package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"starcdn/internal/obs/sketch"
)

// Label is one name=value dimension of a metric series.
type Label struct {
	Key   string
	Value string
}

// L builds a Label; it keeps call sites short.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil Counter ignores updates (the disabled-registry path).
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (no-op on nil).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one (no-op on nil).
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically updated float64 value. The zero value is ready to
// use; a nil Gauge ignores updates.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores x (no-op on nil).
func (g *Gauge) Set(x float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(x))
}

// Add adds d to the gauge with a CAS loop (no-op on nil).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current gauge value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket cumulative histogram with atomic per-bucket
// counters. Buckets are defined by their inclusive upper bounds; an implicit
// +Inf bucket catches the tail. A nil Histogram ignores observations.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// DefLatencyBucketsMs is the default latency histogram geometry, spanning
// sub-millisecond loopback frames to multi-second chaos stalls.
var DefLatencyBucketsMs = []float64{
	0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500,
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one sample (no-op on nil).
func (h *Histogram) Observe(x float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, x) // first bound >= x
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+x)) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// snapshot returns (bounds, cumulative counts per bound plus +Inf).
func (h *Histogram) snapshot() (bounds []float64, cumulative []int64) {
	cumulative = make([]int64, len(h.counts))
	var run int64
	for i := range h.counts {
		run += h.counts[i].Load()
		cumulative[i] = run
	}
	return h.bounds, cumulative
}

// metricKind discriminates registry series.
type metricKind int

const (
	counterKind metricKind = iota
	gaugeKind
	histogramKind
	topkKind
	sketchKind
)

func (k metricKind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	case topkKind:
		return "topk"
	case sketchKind:
		return "sketch"
	default:
		return "histogram"
	}
}

// series is one registered (name, labels) instrument. key caches the
// canonical name{labels} identity so hot readers (the flight recorder) never
// re-render labels.
type series struct {
	name   string
	key    string
	labels []Label
	kind   metricKind
	c      *Counter
	g      *Gauge
	h      *Histogram
	tk     *TopK
	sk     *Sketch
}

// Registry hands out named, labelled instruments and snapshots them for
// exposition. Lookups take a mutex, so callers on hot paths fetch their
// handles once and hold them; the instruments themselves are atomic.
//
// A nil *Registry is the disabled configuration: every lookup returns a nil
// instrument whose methods are no-ops.
type Registry struct {
	mu     sync.Mutex
	series map[string]*series
	gen    uint64 // bumped whenever a new series registers
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{series: make(map[string]*series)}
}

// seriesKey renders the canonical identity of a series. Labels are sorted by
// key so L("a","1"),L("b","2") and L("b","2"),L("a","1") name the same
// series.
func seriesKey(name string, labels []Label) (string, []Label) {
	if len(labels) == 0 {
		return name, nil
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key }) //lint:ignore hotalloc label sort runs at series resolution, which callers do once at setup or first sight, never per request
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String(), ls
}

// lookup returns (creating if needed) the series for (name, labels, kind).
// A pre-existing series of a different kind under the same name+labels is a
// programmer error; the caller then gets a fresh detached instrument that
// never shows up in expositions rather than corrupting the registered one.
func (r *Registry) lookup(name string, labels []Label, kind metricKind, bounds []float64, param float64) *series {
	key, ls := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.series[key]
	if ok && s.kind == kind {
		return s
	}
	ns := &series{name: name, key: key, labels: ls, kind: kind} //lint:ignore hotalloc series and instrument are created once, at first registration; later lookups return the cached series
	switch kind {
	case counterKind:
		ns.c = &Counter{} //lint:ignore hotalloc series and instrument are created once, at first registration; later lookups return the cached series
	case gaugeKind:
		ns.g = &Gauge{} //lint:ignore hotalloc series and instrument are created once, at first registration; later lookups return the cached series
	case histogramKind:
		ns.h = newHistogram(bounds)
	case topkKind:
		ns.tk = newTopK(int(param))
	case sketchKind:
		ns.sk = newSketchInstrument(param)
	}
	if !ok {
		r.series[key] = ns
		r.gen++
	}
	return ns
}

// generation returns a counter that changes whenever a new series registers,
// so snapshot plans (the flight recorder's) know when to rebuild. Nil-safe.
func (r *Registry) generation() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gen
}

// allSeries returns the registered series in arbitrary order, without the
// sorting or label rendering Snapshot pays. Nil-safe.
func (r *Registry) allSeries() []*series {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*series, 0, len(r.series))
	for _, s := range r.series {
		out = append(out, s)
	}
	return out
}

// Counter returns the counter registered under (name, labels), creating it
// on first use. A nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, labels, counterKind, nil, 0).c
}

// Gauge returns the gauge registered under (name, labels). A nil registry
// returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, labels, gaugeKind, nil, 0).g
}

// Histogram returns the histogram registered under (name, labels), creating
// it with the given bucket upper bounds on first use (nil bounds select
// DefLatencyBucketsMs). A nil registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DefLatencyBucketsMs
	}
	return r.lookup(name, labels, histogramKind, bounds, 0).h
}

// TopK returns the top-K popularity instrument registered under (name,
// labels), tracking at most k keys (k <= 0 selects the default capacity;
// the capacity is fixed on first use). A nil registry returns a nil (no-op)
// instrument.
func (r *Registry) TopK(name string, k int, labels ...Label) *TopK {
	if r == nil {
		return nil
	}
	return r.lookup(name, labels, topkKind, nil, float64(k)).tk
}

// Sketch returns the quantile-sketch instrument registered under (name,
// labels) with relative accuracy alpha (alpha <= 0 selects 0.01; the
// accuracy is fixed on first use). A nil registry returns a nil (no-op)
// instrument.
func (r *Registry) Sketch(name string, alpha float64, labels ...Label) *Sketch {
	if r == nil {
		return nil
	}
	return r.lookup(name, labels, sketchKind, nil, alpha).sk
}

// SeriesSnapshot is one series' frozen state, as used by the expositions.
type SeriesSnapshot struct {
	Name   string
	Labels []Label
	Kind   string
	// Value holds the counter or gauge value.
	Value float64
	// HistBounds/HistCumulative/HistCount/HistSum describe histograms.
	HistBounds     []float64
	HistCumulative []int64
	HistCount      int64
	HistSum        float64
	// TopK/TopKN describe top-K instruments: the ranked entries and the
	// total stream weight they summarise.
	TopK  []TopKEntry
	TopKN int64
	// SketchQ (aligned with SketchQuantiles), SketchExemplars, SketchCount,
	// SketchSum, SketchMin, and SketchMax describe quantile sketches.
	SketchQ         []float64
	SketchExemplars []sketch.Exemplar
	SketchCount     int64
	SketchSum       float64
	SketchMin       float64
	SketchMax       float64
}

// LabelString renders the series' labels as {k="v",...} ("" when unlabelled).
func (s SeriesSnapshot) LabelString() string {
	if len(s.Labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range s.Labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Snapshot freezes every registered series, sorted by name then labels, so
// expositions are deterministic. A nil registry snapshots to nothing.
func (r *Registry) Snapshot() []SeriesSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	all := make([]*series, 0, len(r.series))
	for _, s := range r.series {
		all = append(all, s)
	}
	r.mu.Unlock()

	out := make([]SeriesSnapshot, 0, len(all))
	for _, s := range all {
		snap := SeriesSnapshot{Name: s.name, Labels: s.labels, Kind: s.kind.String()}
		switch s.kind {
		case counterKind:
			snap.Value = float64(s.c.Value())
		case gaugeKind:
			snap.Value = s.g.Value()
		case histogramKind:
			snap.HistBounds, snap.HistCumulative = s.h.snapshot()
			// Derive the count from the cumulative tail so exposition rows
			// stay internally consistent under concurrent updates.
			snap.HistCount = snap.HistCumulative[len(snap.HistCumulative)-1]
			snap.HistSum = s.h.Sum()
		case topkKind:
			snap.TopK = s.tk.Top()
			snap.TopKN = s.tk.N()
		case sketchKind:
			snap.SketchQ, snap.SketchExemplars, snap.SketchCount,
				snap.SketchSum, snap.SketchMin, snap.SketchMax = s.sk.snapshotSketch()
		}
		out = append(out, snap)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].LabelString() < out[j].LabelString()
	})
	return out
}
