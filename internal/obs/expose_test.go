package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func exposeFixture() *Registry {
	r := NewRegistry()
	r.Counter("starcdn_sim_requests_total", L("source", "local")).Add(10)
	r.Counter("starcdn_sim_requests_total", L("source", "ground")).Add(4)
	r.Gauge("starcdn_sim_sat_hit_rate", L("sat", "7")).Set(0.75)
	h := r.Histogram("starcdn_replay_frame_ms", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)
	return r
}

func TestWritePrometheus(t *testing.T) {
	var b bytes.Buffer
	if err := exposeFixture().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE starcdn_sim_requests_total counter",
		`starcdn_sim_requests_total{source="local"} 10`,
		`starcdn_sim_requests_total{source="ground"} 4`,
		"# TYPE starcdn_sim_sat_hit_rate gauge",
		`starcdn_sim_sat_hit_rate{sat="7"} 0.75`,
		"# TYPE starcdn_replay_frame_ms histogram",
		`starcdn_replay_frame_ms_bucket{le="1"} 1`,
		`starcdn_replay_frame_ms_bucket{le="10"} 2`,
		`starcdn_replay_frame_ms_bucket{le="+Inf"} 3`,
		"starcdn_replay_frame_ms_sum 55.5",
		"starcdn_replay_frame_ms_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus exposition missing %q\n%s", want, out)
		}
	}
	// TYPE header appears exactly once per metric name.
	if n := strings.Count(out, "# TYPE starcdn_sim_requests_total"); n != 1 {
		t.Errorf("TYPE header repeated %d times", n)
	}
	// Deterministic: two expositions are byte-identical.
	var b2 bytes.Buffer
	r := exposeFixture()
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	var b3 bytes.Buffer
	if err := r.WritePrometheus(&b3); err != nil {
		t.Fatal(err)
	}
	if b2.String() != b3.String() {
		t.Error("two expositions of the same registry differ")
	}
}

func TestWriteJSON(t *testing.T) {
	var b bytes.Buffer
	if err := exposeFixture().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b.Bytes(), &m); err != nil {
		t.Fatalf("exposition is not valid JSON: %v\n%s", err, b.String())
	}
	if v, ok := m[`starcdn_sim_requests_total{source="local"}`].(float64); !ok || v != 10 {
		t.Errorf("local counter = %v", m[`starcdn_sim_requests_total{source="local"}`])
	}
	if v, ok := m[`starcdn_sim_sat_hit_rate{sat="7"}`].(float64); !ok || v != 0.75 {
		t.Errorf("gauge = %v", m[`starcdn_sim_sat_hit_rate{sat="7"}`])
	}
	hist, ok := m["starcdn_replay_frame_ms"].(map[string]any)
	if !ok {
		t.Fatalf("histogram missing from JSON exposition: %v", m)
	}
	if hist["count"].(float64) != 3 || hist["sum"].(float64) != 55.5 {
		t.Errorf("histogram fields = %v", hist)
	}
}
