package obs

import (
	"log/slog"
	"sync"
	"testing"
)

func TestCaptureRecords(t *testing.T) {
	cap := NewCapture()
	log := NewLogger(cap)
	log.Error("accept failed", "sat", 7, "err", "boom")
	log.Info("server started", "addr", "127.0.0.1:1")

	recs := cap.Records()
	if len(recs) != 2 {
		t.Fatalf("captured %d records, want 2", len(recs))
	}
	r := recs[0]
	if r.Level != slog.LevelError || r.Message != "accept failed" {
		t.Errorf("record = %+v", r)
	}
	if got := r.Attrs["sat"].Int64(); got != 7 {
		t.Errorf("sat attr = %d, want 7", got)
	}
	if got := r.Attrs["err"].String(); got != "boom" {
		t.Errorf("err attr = %q", got)
	}
	if msgs := cap.Messages(); msgs[1] != "server started" {
		t.Errorf("messages = %v", msgs)
	}
}

// TestCaptureWithAttrs: attrs bound via With() land on captured records, and
// derived loggers share the same sink.
func TestCaptureWithAttrs(t *testing.T) {
	cap := NewCapture()
	log := NewLogger(cap).With("sat", 3)
	log.Warn("slow frame", "ms", 12.5)
	recs := cap.Records()
	if len(recs) != 1 {
		t.Fatalf("captured %d records, want 1", len(recs))
	}
	if recs[0].Attrs["sat"].Int64() != 3 || recs[0].Attrs["ms"].Float64() != 12.5 {
		t.Errorf("attrs = %v", recs[0].Attrs)
	}
}

func TestCaptureConcurrent(t *testing.T) {
	cap := NewCapture()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			log := NewLogger(cap).With("worker", w)
			for i := 0; i < 100; i++ {
				log.Info("tick", "i", i)
			}
		}(w)
	}
	wg.Wait()
	if got := len(cap.Records()); got != 800 {
		t.Errorf("captured %d records, want 800", got)
	}
}

func TestDiscardLogger(t *testing.T) {
	log := DiscardLogger()
	log.Error("dropped") // must not panic or print
	if log.Enabled(nil, slog.LevelError) {
		t.Error("discard logger claims to be enabled")
	}
}
