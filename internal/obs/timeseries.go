package obs

import (
	"encoding/json"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// timeseriesPayload is the /timeseries.json response shape.
type timeseriesPayload struct {
	EpochSec float64                     `json:"epoch_sec"`
	Epochs   int64                       `json:"epochs"`
	Form     string                      `json:"form"`
	Series   map[string]timeseriesPoints `json:"series"`
}

// timeseriesPoints is one series' windowed samples. Values are pointers so
// epochs the series had not appeared in marshal as null (JSON has no NaN).
type timeseriesPoints struct {
	T []float64  `json:"t"`
	V []*float64 `json:"v"`
}

// handleTimeseries answers windowed queries against the flight recorder:
//
//	GET /timeseries.json?window=60&form=rate&match=starcdn_slo
//
// window bounds the lookback in recorded seconds (0/absent = everything
// retained), match filters series by substring, and form selects raw values
// (default), per-epoch deltas, or per-second rates — the latter two for
// cumulative series (counters, histogram _count/_sum/_bucket).
func (r *Recorder) handleTimeseries(w http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	window := 0.0
	if s := q.Get("window"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || v < 0 {
			http.Error(w, "bad window", http.StatusBadRequest)
			return
		}
		window = v
	}
	form := q.Get("form")
	switch form {
	case "", "raw":
		form = "raw"
	case "delta", "rate":
	default:
		http.Error(w, "bad form (raw|delta|rate)", http.StatusBadRequest)
		return
	}
	match := q.Get("match")

	out := timeseriesPayload{
		EpochSec: r.EpochSec(),
		Epochs:   r.Epochs(),
		Form:     form,
		Series:   make(map[string]timeseriesPoints),
	}
	for _, key := range r.Series() {
		if match != "" && !strings.Contains(key, match) {
			continue
		}
		pts := r.Window(key, window)
		if form != "raw" {
			pts = transformPoints(pts, form)
		}
		tp := timeseriesPoints{T: make([]float64, 0, len(pts)), V: make([]*float64, 0, len(pts))}
		for _, p := range pts {
			tp.T = append(tp.T, p.T)
			if math.IsNaN(p.V) || math.IsInf(p.V, 0) {
				tp.V = append(tp.V, nil)
			} else {
				v := p.V
				tp.V = append(tp.V, &v)
			}
		}
		out.Series[key] = tp
	}
	w.Header().Set("Content-Type", "application/json")
	// A client hanging up mid-response surfaces as a write error here;
	// there is nothing useful to do with it.
	_ = json.NewEncoder(w).Encode(out)
}

// transformPoints converts raw samples to per-epoch deltas or per-second
// rates. The first point is dropped (no predecessor to difference against).
// A decrease between adjacent epochs is treated as a counter reset per the
// increase() convention (Recorder.Delta documents the full rationale): the
// post-reset value counts as that epoch's accrual, so a killed-and-revived
// server never plots a negative delta or rate.
func transformPoints(pts []Point, form string) []Point {
	if len(pts) < 2 {
		return nil
	}
	out := make([]Point, 0, len(pts)-1)
	for i := 1; i < len(pts); i++ {
		d := pts[i].V - pts[i-1].V
		if pts[i].V < pts[i-1].V {
			d = pts[i].V
		}
		if form == "rate" {
			dt := pts[i].T - pts[i-1].T
			if dt > 0 {
				d /= dt
			} else {
				d = math.NaN()
			}
		}
		out = append(out, Point{T: pts[i].T, V: d})
	}
	return out
}
