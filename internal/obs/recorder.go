package obs

import (
	"math"
	"sort"
	"sync"
	"time"
)

// Recorder is the constellation flight recorder: it snapshots every series of
// a Registry on a fixed epoch into fixed-capacity ring buffers, turning the
// point-in-time /metrics surface into a queryable time series (hit rate over
// a kill window, latency quantiles across handovers, per-satellite health
// history). Epochs can be driven by simulated time (sim.Run calls TickAt with
// each request's trace timestamp) or by wall time (StartWall spawns a ticker,
// for the TCP replayer) — the storage and query sides are identical.
//
// The recorder only ever reads the registry; it consumes no randomness and
// touches no simulation state, so enabling it cannot change results.
//
// Counters and gauges record their value per epoch under their canonical
// series key (name{labels}). Histograms fan out into `<key>_count`,
// `<key>_sum`, and one `<name>_bucket{...,le="..."}` series per bound, which
// is what lets the SLO engine compute windowed quantiles from bucket deltas.
//
// A nil *Recorder ignores every call, like the rest of this package.
type Recorder struct {
	reg      *Registry
	epochSec float64
	capN     int

	mu    sync.Mutex
	times []float64            // shared epoch-timestamp ring
	vals  map[string][]float64 // per-series ring, NaN-padded, aligned to times
	hists map[string][]float64 // histogram series key -> bucket bounds
	head  int                  // next physical write slot
	n     int                  // live entries (<= capN)
	next  float64              // next epoch boundary (TickAt driving)
	ticks int64                // total snapshots taken

	// plan caches, per registry series, the destination ring slices and the
	// atomic sources, so the steady-state snapshot is a straight array walk
	// with no sorting, label rendering, or map lookups. planGen is the
	// registry generation the plan was built against; it is rebuilt (paying
	// the key-rendering cost once) only when new series register.
	plan    []recSeries
	planGen uint64

	onEpoch  []func(epochSec float64) // hooks (SLO evaluation), run unlocked
	preEpoch []func(epochSec float64) // pre-snapshot hooks, run under r.mu
}

// recSeries is one plan entry: where a series' epoch samples land.
type recSeries struct {
	src     *series
	ring    []float64   // counter/gauge destination
	cntRing []float64   // histogram <key>_count destination
	sumRing []float64   // histogram <key>_sum destination
	buckets [][]float64 // histogram cumulative _bucket destinations
	samples []float64   // topk/sketch <key>_samples destination
	ranks   [][]float64 // topk <name>_topk{rank=...} destinations
	qs      [][]float64 // sketch <name>_q{q=...} destinations
}

// RecorderOptions configures a Recorder.
type RecorderOptions struct {
	// EpochSec is the snapshot interval in seconds (simulated or wall,
	// depending on the driver). 0 selects 1s.
	EpochSec float64
	// Capacity is the ring size in epochs. 0 selects 512.
	Capacity int
}

// NewRecorder builds a flight recorder over reg. A nil registry yields a
// recorder that ticks but records nothing (hooks still fire, so SLOs over an
// empty registry simply never evaluate).
func NewRecorder(reg *Registry, opts RecorderOptions) *Recorder {
	if opts.EpochSec <= 0 {
		opts.EpochSec = 1
	}
	if opts.Capacity <= 0 {
		opts.Capacity = 512
	}
	return &Recorder{
		reg:      reg,
		epochSec: opts.EpochSec,
		capN:     opts.Capacity,
		times:    make([]float64, opts.Capacity),
		vals:     make(map[string][]float64),
		hists:    make(map[string][]float64),
		next:     opts.EpochSec,
		planGen:  ^uint64(0), // force the first snapshot to build a plan
	}
}

// EpochSec returns the snapshot interval (0 on nil).
func (r *Recorder) EpochSec() float64 {
	if r == nil {
		return 0
	}
	return r.epochSec
}

// Epochs returns how many snapshots have been taken (0 on nil).
func (r *Recorder) Epochs() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ticks
}

// OnEpoch registers a hook invoked (outside the recorder lock) after every
// snapshot with the epoch's timestamp. The SLO engine registers itself here.
func (r *Recorder) OnEpoch(fn func(t float64)) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.onEpoch = append(r.onEpoch, fn)
	r.mu.Unlock()
}

// OnEpochPre registers a hook invoked at the start of every snapshot, while
// the recorder lock is held and *before* the registry plan walk — so values
// the hook pushes into the registry (a runtime-bridge sample, a phase-timer
// flush) land in the very epoch being snapshotted rather than the next one.
//
// Pre-hooks run under r.mu: they must not call back into the recorder (that
// would deadlock) and should only read external state and store into
// registry instruments. Series a hook writes to must be registered before
// the first snapshot if they are to appear in that snapshot's plan (the
// generation check runs after the pre-hooks, so same-call registrations are
// still picked up — but keep hooks allocation-free by pre-registering).
func (r *Recorder) OnEpochPre(fn func(t float64)) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.preEpoch = append(r.preEpoch, fn)
	r.mu.Unlock()
}

// TickAt drives the recorder from a monotone event clock (simulated seconds):
// the first call at or past the next epoch boundary snapshots the registry,
// stamped with the boundary time. At most one snapshot is taken per call, so
// quiet stretches skip epochs rather than replaying stale values. Nil-safe.
func (r *Recorder) TickAt(t float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if t < r.next {
		r.mu.Unlock()
		return
	}
	boundary := math.Floor(t/r.epochSec) * r.epochSec
	r.snapshotLocked(boundary)
	r.next = boundary + r.epochSec
	hooks := r.onEpoch
	r.mu.Unlock()
	for _, fn := range hooks {
		fn(boundary)
	}
}

// Seal forces one final snapshot at time t regardless of epoch alignment —
// the end-of-run flush, so the last partial epoch is not lost. Nil-safe.
func (r *Recorder) Seal(t float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.snapshotLocked(t)
	r.next = math.Floor(t/r.epochSec)*r.epochSec + r.epochSec
	hooks := r.onEpoch
	r.mu.Unlock()
	for _, fn := range hooks {
		fn(t)
	}
}

// StartWall drives the recorder from wall time: a background ticker snapshots
// every EpochSec seconds, stamped with seconds-since-start. The returned stop
// function halts the ticker and seals a final epoch; it is idempotent.
func (r *Recorder) StartWall() (stop func()) {
	if r == nil {
		return func() {}
	}
	start := time.Now()
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(time.Duration(r.epochSec * float64(time.Second)))
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case now := <-tick.C:
				r.Seal(now.Sub(start).Seconds())
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-finished
			r.Seal(time.Since(start).Seconds())
		})
	}
}

// snapshotLocked appends one epoch. Callers hold r.mu.
//
// The hot path is the plan walk: one atomic load and one float store per
// recorded series, with the key rendering and ring allocation amortised into
// rebuildPlanLocked (which only runs when the registry gained series).
// Registry series are append-only, so every ring in r.vals is covered by the
// plan and no NaN back-padding pass is needed.
func (r *Recorder) snapshotLocked(t float64) {
	for _, fn := range r.preEpoch {
		fn(t)
	}
	slot := r.head
	r.times[slot] = t
	if gen := r.reg.generation(); gen != r.planGen {
		r.rebuildPlanLocked()
		r.planGen = gen
	}
	for _, rs := range r.plan {
		s := rs.src
		switch s.kind {
		case counterKind:
			rs.ring[slot] = float64(s.c.Value())
		case gaugeKind:
			rs.ring[slot] = s.g.Value()
		case histogramKind:
			var run int64
			for i := range s.h.counts {
				run += s.h.counts[i].Load()
				rs.buckets[i][slot] = float64(run)
			}
			rs.cntRing[slot] = float64(run)
			rs.sumRing[slot] = s.h.Sum()
		case topkKind:
			top := s.tk.Top()
			for i := range rs.ranks {
				if i < len(top) {
					rs.ranks[i][slot] = float64(top[i].Count)
				} else {
					rs.ranks[i][slot] = math.NaN()
				}
			}
			rs.samples[slot] = float64(s.tk.N())
		case sketchKind:
			qv, _, count, _, _, _ := s.sk.snapshotSketch()
			for i := range rs.qs {
				rs.qs[i][slot] = qv[i]
			}
			rs.samples[slot] = float64(count)
		}
	}
	r.head = (r.head + 1) % r.capN
	if r.n < r.capN {
		r.n++
	}
	r.ticks++
}

// rebuildPlanLocked recomputes the snapshot plan from the registry: one entry
// per series, with destination rings resolved (and NaN-backfilled on first
// appearance) and histogram bucket keys rendered once. Callers hold r.mu.
func (r *Recorder) rebuildPlanLocked() {
	all := r.reg.allSeries()
	r.plan = r.plan[:0]
	for _, s := range all {
		rs := recSeries{src: s}
		switch s.kind {
		case histogramKind:
			r.hists[s.key] = s.h.bounds
			rs.cntRing = r.ringLocked(s.key + "_count")     //lint:ignore hotalloc ring plan is rebuilt only when the series set changes between epochs, never per request
			rs.sumRing = r.ringLocked(s.key + "_sum")       //lint:ignore hotalloc ring plan is rebuilt only when the series set changes between epochs, never per request
			rs.buckets = make([][]float64, len(s.h.counts)) //lint:ignore hotalloc ring plan is rebuilt only when the series set changes between epochs, never per request
			for i := range s.h.counts {
				le := "+Inf"
				if i < len(s.h.bounds) {
					le = formatFloat(s.h.bounds[i])
				}
				bs := SeriesSnapshot{Labels: append(append([]Label(nil), s.labels...), L("le", le))}
				rs.buckets[i] = r.ringLocked(s.name + "_bucket" + bs.LabelString()) //lint:ignore hotalloc ring plan is rebuilt only when the series set changes between epochs, never per request
			}
		case topkKind:
			rs.samples = r.ringLocked(s.key + "_samples") //lint:ignore hotalloc ring plan is rebuilt only when the series set changes between epochs, never per request
			rs.ranks = make([][]float64, promTopKRanks)   //lint:ignore hotalloc ring plan is rebuilt only when the series set changes between epochs, never per request
			for i := range rs.ranks {
				rs.ranks[i] = r.ringLocked(derivedRingKey(s.name+"_topk", s.labels, "rank", formatFloat(float64(i+1)))) //lint:ignore hotalloc ring plan is rebuilt only when the series set changes between epochs, never per request
			}
		case sketchKind:
			rs.samples = r.ringLocked(s.key + "_samples")   //lint:ignore hotalloc ring plan is rebuilt only when the series set changes between epochs, never per request
			rs.qs = make([][]float64, len(SketchQuantiles)) //lint:ignore hotalloc ring plan is rebuilt only when the series set changes between epochs, never per request
			for i, q := range SketchQuantiles {
				rs.qs[i] = r.ringLocked(derivedRingKey(s.name+"_q", s.labels, "q", formatFloat(q))) //lint:ignore hotalloc ring plan is rebuilt only when the series set changes between epochs, never per request
			}
		default:
			rs.ring = r.ringLocked(s.key)
		}
		r.plan = append(r.plan, rs)
	}
}

// derivedRingKey renders the ring key of a derived series — the base
// labels plus one appended dimension (rank for top-K, q for sketches),
// following the histogram _bucket convention of appending the extra label
// last. The SLO engine rebuilds the same key when targeting a recorded
// sketch quantile.
func derivedRingKey(name string, labels []Label, extraKey, extraVal string) string {
	bs := SeriesSnapshot{Labels: append(append([]Label(nil), labels...), L(extraKey, extraVal))}
	return name + bs.LabelString()
}

// ringLocked returns (creating and NaN-backfilling if needed) the ring for a
// series key. Callers hold r.mu.
func (r *Recorder) ringLocked(key string) []float64 {
	ring, ok := r.vals[key]
	if !ok {
		ring = make([]float64, r.capN) //lint:ignore hotalloc one ring per series, allocated at first snapshot and reused for the whole run
		for i := range ring {
			ring[i] = math.NaN()
		}
		r.vals[key] = ring
	}
	return ring
}

// Point is one (time, value) sample of a recorded series. Value is NaN for
// epochs the series had not yet appeared in.
type Point struct {
	T float64
	V float64
}

// slotAt maps logical index i (0 oldest .. n-1 newest) to a physical slot.
func (r *Recorder) slotAt(i int) int {
	return (r.head - r.n + i + r.capN) % r.capN
}

// Series returns the sorted keys of every recorded series (nil on nil).
func (r *Recorder) Series() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.vals))
	for k := range r.vals {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Window returns the samples of series key whose epoch time is strictly
// greater than lastEpochTime-windowSec (windowSec <= 0 returns everything
// retained). Unknown series and nil recorders return nil.
func (r *Recorder) Window(key string, windowSec float64) []Point {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ring, ok := r.vals[key]
	if !ok || r.n == 0 {
		return nil
	}
	latest := r.times[r.slotAt(r.n-1)]
	var out []Point
	for i := 0; i < r.n; i++ {
		slot := r.slotAt(i)
		if windowSec > 0 && r.times[slot] <= latest-windowSec {
			continue
		}
		out = append(out, Point{T: r.times[slot], V: ring[slot]})
	}
	return out
}

// Last returns the most recent sample of a series (ok=false when the series
// is unknown, empty, or the recorder nil).
func (r *Recorder) Last(key string) (Point, bool) {
	pts := r.Window(key, 0)
	for i := len(pts) - 1; i >= 0; i-- {
		if !math.IsNaN(pts[i].V) {
			return pts[i], true
		}
	}
	return Point{}, false
}

// Delta returns how much a cumulative series (counter, histogram
// _count/_sum/_bucket) grew inside the window, accumulated epoch by epoch
// following the increase() convention:
//
//   - A series born inside the retained history counts its whole first
//     value (the first in-window epoch's increments are attributed to the
//     window, not silently dropped).
//   - A *decrease* between adjacent epochs means the underlying counter
//     restarted from zero (a killed-and-revived server re-registering its
//     meters); the post-reset value is counted as that epoch's increase, so
//     the delta stays monotone non-negative instead of going negative and
//     poisoning rates, quantiles, and SLO ratios across the reset.
//
// ok=false without at least one in-window sample.
func (r *Recorder) Delta(key string, windowSec float64) (float64, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ring, ok := r.vals[key]
	if !ok || r.n == 0 {
		return 0, false
	}
	latest := r.times[r.slotAt(r.n-1)]
	prev, total, seen := math.NaN(), 0.0, false
	for i := 0; i < r.n; i++ {
		slot := r.slotAt(i)
		v := ring[slot]
		if math.IsNaN(v) {
			continue
		}
		if windowSec > 0 && r.times[slot] <= latest-windowSec {
			prev = v // pre-window baseline (resets before the window don't matter)
			continue
		}
		seen = true
		if math.IsNaN(prev) || v < prev {
			total += v // first appearance, or counter reset: count the accrual from zero
		} else {
			total += v - prev
		}
		prev = v
	}
	if !seen {
		return 0, false
	}
	return total, true
}

// HistogramWindow returns a histogram series' bucket bounds and per-bucket
// (non-cumulative) counts of the samples observed within the window, ready
// for HistQuantile. ok=false when the key is not a recorded histogram or the
// window holds no epochs.
func (r *Recorder) HistogramWindow(key string, windowSec float64) (bounds []float64, counts []int64, ok bool) {
	if r == nil {
		return nil, nil, false
	}
	r.mu.Lock()
	bounds = r.hists[key]
	r.mu.Unlock()
	if bounds == nil {
		return nil, nil, false
	}
	name, labels := splitSeriesKey(key)
	counts = make([]int64, len(bounds)+1)
	any := false
	prev := int64(0)
	for i := range counts {
		le := "+Inf"
		if i < len(bounds) {
			le = formatFloat(bounds[i])
		}
		bs := SeriesSnapshot{Labels: append(append([]Label(nil), labels...), L("le", le))}
		d, dok := r.Delta(name+"_bucket"+bs.LabelString(), windowSec)
		if dok {
			any = true
		}
		// The recorded _bucket series are cumulative across buckets;
		// de-cumulate so counts[i] holds just bucket i's samples.
		counts[i] = int64(d) - prev
		if counts[i] < 0 {
			counts[i] = 0
		}
		prev = int64(d)
	}
	return bounds, counts, any
}

// splitSeriesKey splits a canonical series key (name{k="v",...}) back into
// name and labels. Values were rendered with %q, so strconv-style unquoting
// applies; the recorder only ever splits keys it rendered itself.
func splitSeriesKey(key string) (string, []Label) {
	i := indexByte(key, '{')
	if i < 0 {
		return key, nil
	}
	name := key[:i]
	body := key[i+1 : len(key)-1]
	var labels []Label
	for len(body) > 0 {
		eq := indexByte(body, '=')
		if eq < 0 {
			break
		}
		k := body[:eq]
		rest := body[eq+1:]
		v, n := unquotePrefix(rest)
		labels = append(labels, Label{Key: k, Value: v})
		if n < len(rest) && rest[n] == ',' {
			n++
		}
		body = rest[n:]
	}
	return name, labels
}

// indexByte is strings.IndexByte without the import churn.
func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// unquotePrefix decodes one leading %q-quoted string, returning the value and
// the number of input bytes consumed.
func unquotePrefix(s string) (string, int) {
	if len(s) == 0 || s[0] != '"' {
		return "", 0
	}
	var b []byte
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					b = append(b, '\n')
				case 't':
					b = append(b, '\t')
				default:
					b = append(b, s[i])
				}
			}
		case '"':
			return string(b), i + 1
		default:
			b = append(b, s[i])
		}
	}
	return string(b), len(s)
}

// HistQuantile computes quantile q (in [0,1]) from bucket bounds and
// per-bucket (non-cumulative) counts, with linear interpolation inside the
// target bucket — the histogram_quantile convention. The +Inf bucket answers
// with the highest finite bound. Zero samples yield NaN; with a single
// sample, q interpolates across that sample's bucket (its lower edge at q=0,
// its upper bound at q=1). Out-of-range q values are clamped.
func HistQuantile(bounds []float64, counts []int64, q float64) float64 {
	var total int64
	for _, c := range counts {
		total += c
	}
	if total <= 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var run int64
	for i, c := range counts {
		prev := run
		run += c
		if float64(run) < rank || c == 0 {
			continue
		}
		if i >= len(bounds) {
			// +Inf bucket: report the highest finite bound.
			if len(bounds) == 0 {
				return math.NaN()
			}
			return bounds[len(bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := bounds[i]
		frac := (rank - float64(prev)) / float64(c)
		if frac < 0 {
			frac = 0
		}
		return lo + (hi-lo)*frac
	}
	if len(bounds) == 0 {
		return math.NaN()
	}
	return bounds[len(bounds)-1]
}
