package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total")
	g := r.Gauge("x")
	h := r.Histogram("x_ms", nil)
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(1)
	h.Observe(2)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil instruments must read zero")
	}
	if snaps := r.Snapshot(); snaps != nil {
		t.Errorf("nil registry snapshot = %v, want nil", snaps)
	}
	// Nil span / tracer round out the disabled path.
	var span *Span
	span.AddHop(Hop{Kind: "owner"})
	var tr *Tracer
	if tr.Sampled(1) {
		t.Error("nil tracer sampled a request")
	}
	tr.Emit(&Span{})
	if err := tr.Flush(); err != nil {
		t.Errorf("nil tracer flush: %v", err)
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", L("source", "local"))
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Errorf("counter = %d, want 3", c.Value())
	}
	// Same (name, labels) resolves to the same instrument.
	if r.Counter("reqs_total", L("source", "local")) != c {
		t.Error("same series resolved to a different counter")
	}
	// Label order must not matter.
	a := r.Gauge("g", L("a", "1"), L("b", "2"))
	b := r.Gauge("g", L("b", "2"), L("a", "1"))
	if a != b {
		t.Error("label order changed series identity")
	}
	a.Set(4.5)
	a.Add(0.5)
	if b.Value() != 5 {
		t.Errorf("gauge = %v, want 5", b.Value())
	}

	h := r.Histogram("lat_ms", []float64{1, 10, 100})
	for _, x := range []float64{0.5, 5, 50, 500} {
		h.Observe(x)
	}
	if h.Count() != 4 {
		t.Errorf("hist count = %d, want 4", h.Count())
	}
	if h.Sum() != 555.5 {
		t.Errorf("hist sum = %v, want 555.5", h.Sum())
	}
	bounds, cum := h.snapshot()
	if len(bounds) != 3 || len(cum) != 4 {
		t.Fatalf("snapshot shape = %d bounds, %d buckets", len(bounds), len(cum))
	}
	want := []int64{1, 2, 3, 4}
	for i, c := range cum {
		if c != want[i] {
			t.Errorf("cumulative[%d] = %d, want %d", i, c, want[i])
		}
	}
	// Boundary value lands in its bucket (le is inclusive).
	h.Observe(10)
	_, cum = h.snapshot()
	if cum[1] != 3 {
		t.Errorf("le=10 cumulative = %d, want 3 (bound inclusive)", cum[1])
	}
}

// TestKindMismatchIsDetached: re-registering a series under a different kind
// must not corrupt the original; the caller gets a detached instrument.
func TestKindMismatchIsDetached(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	c.Add(7)
	g := r.Gauge("x")
	g.Set(99)
	if c.Value() != 7 {
		t.Errorf("counter corrupted by kind mismatch: %d", c.Value())
	}
	snaps := r.Snapshot()
	if len(snaps) != 1 || snaps[0].Kind != "counter" || snaps[0].Value != 7 {
		t.Errorf("snapshot after mismatch = %+v", snaps)
	}
}

func TestSnapshotSortedAndLabelled(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", L("s", "2")).Inc()
	r.Counter("b_total", L("s", "1")).Inc()
	r.Counter("a_total").Inc()
	snaps := r.Snapshot()
	got := make([]string, len(snaps))
	for i, s := range snaps {
		got[i] = s.Name + s.LabelString()
	}
	want := []string{"a_total", `b_total{s="1"}`, `b_total{s="2"}`}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("snapshot order = %v, want %v", got, want)
	}
}

// TestPrometheusLabelEscaping: label values containing the three characters
// the Prometheus text format escapes (newline, double quote, backslash) must
// render escaped — and round-trip through the recorder's series-key parser,
// so a recorded series with hostile labels stays addressable.
func TestPrometheusLabelEscaping(t *testing.T) {
	cases := []struct {
		name  string
		value string
		want  string // escaped form inside the exposition line
	}{
		{"newline", "a\nb", `a\nb`},
		{"quote", `say "hi"`, `say \"hi\"`},
		{"backslash", `C:\tmp`, `C:\\tmp`},
		{"mixed", "\\\"\n", `\\\"\n`},
	}
	for _, tc := range cases {
		r := NewRegistry()
		r.Counter("starcdn_test_events_total", L("path", tc.value)).Inc()
		var b bytes.Buffer
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		line := `starcdn_test_events_total{path="` + tc.want + `"} 1`
		if !strings.Contains(b.String(), line) {
			t.Errorf("%s: exposition lacks %q:\n%s", tc.name, line, b.String())
		}
		// Exactly one line, no raw newline splitting the sample line.
		for _, l := range strings.Split(strings.TrimSpace(b.String()), "\n") {
			if strings.HasPrefix(l, "starcdn_test_events_total{") &&
				!strings.HasSuffix(l, "} 1") {
				t.Errorf("%s: sample line broken by unescaped character: %q", tc.name, l)
			}
		}
		// Round trip: the canonical key parses back to the original value.
		snap := r.Snapshot()[0]
		key := snap.Name + snap.LabelString()
		name, labels := splitSeriesKey(key)
		if name != "starcdn_test_events_total" || len(labels) != 1 ||
			labels[0].Value != tc.value {
			t.Errorf("%s: key %q parsed to name=%q labels=%v, want value %q",
				tc.name, key, name, labels, tc.value)
		}
	}
}

// TestHistogramInfOnlyBucket: a histogram built with zero finite bounds still
// exposes a consistent +Inf bucket, count, and sum.
func TestHistogramInfOnlyBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("starcdn_test_latency_ms", []float64{})
	h.Observe(3)
	h.Observe(4000)
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`starcdn_test_latency_ms_bucket{le="+Inf"} 2`,
		"starcdn_test_latency_ms_sum 4003",
		"starcdn_test_latency_ms_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("+Inf-only exposition lacks %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "starcdn_test_latency_ms_bucket") != 1 {
		t.Errorf("+Inf-only histogram exposed extra buckets:\n%s", out)
	}
}

// TestHistogramExpositionConsistency: the _count row must equal the +Inf
// cumulative bucket and the sum of observations, including after boundary
// and tail observations — the invariant scrapers rely on when computing
// histogram_quantile.
func TestHistogramExpositionConsistency(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("starcdn_test_latency_ms", []float64{1, 10, 100}, L("op", "get"))
	for _, x := range []float64{0.1, 1, 1.0001, 10, 99.9, 100, 101, 1e9} {
		h.Observe(x)
	}
	snap := r.Snapshot()[0]
	if snap.Kind != "histogram" {
		t.Fatalf("snapshot kind = %s", snap.Kind)
	}
	if got := snap.HistCumulative[len(snap.HistCumulative)-1]; got != snap.HistCount {
		t.Errorf("+Inf cumulative %d != count %d", got, snap.HistCount)
	}
	if snap.HistCount != 8 {
		t.Errorf("count = %d, want 8", snap.HistCount)
	}
	// Cumulative rows are monotone non-decreasing.
	for i := 1; i < len(snap.HistCumulative); i++ {
		if snap.HistCumulative[i] < snap.HistCumulative[i-1] {
			t.Fatalf("cumulative not monotone: %v", snap.HistCumulative)
		}
	}
	// Inclusive upper bounds: le=1 holds 0.1 and 1; le=10 adds 1.0001 and 10.
	if snap.HistCumulative[0] != 2 || snap.HistCumulative[1] != 4 {
		t.Errorf("cumulative = %v, want [2 4 6 8]", snap.HistCumulative)
	}
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Labelled histograms interleave their own labels with le.
	for _, want := range []string{
		`starcdn_test_latency_ms_bucket{op="get",le="1"} 2`,
		`starcdn_test_latency_ms_bucket{op="get",le="+Inf"} 8`,
		`starcdn_test_latency_ms_count{op="get"} 8`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition lacks %q:\n%s", want, out)
		}
	}
}

// TestHistogramQuantileEdgeSamples: quantiles over registry snapshots with
// zero and one observation — the cases a naive interpolation divides by zero
// on.
func TestHistogramQuantileEdgeSamples(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("starcdn_test_latency_ms", []float64{1, 10})

	toCounts := func() (bounds []float64, counts []int64) {
		snap := r.Snapshot()[0]
		counts = make([]int64, len(snap.HistCumulative))
		prev := int64(0)
		for i, c := range snap.HistCumulative {
			counts[i] = c - prev
			prev = c
		}
		return snap.HistBounds, counts
	}

	// Zero samples: NaN at every quantile.
	bounds, counts := toCounts()
	for _, q := range []float64{0, 0.5, 1} {
		if got := HistQuantile(bounds, counts, q); !math.IsNaN(got) {
			t.Errorf("empty histogram q=%v = %v, want NaN", q, got)
		}
	}

	// One sample in the middle bucket: q=0 pins its lower edge, q=1 its
	// upper bound, q=0.5 lands between.
	h.Observe(5)
	bounds, counts = toCounts()
	if got := HistQuantile(bounds, counts, 0); got != 1 {
		t.Errorf("single-sample q=0 = %v, want 1", got)
	}
	if got := HistQuantile(bounds, counts, 1); got != 10 {
		t.Errorf("single-sample q=1 = %v, want 10", got)
	}
	if got := HistQuantile(bounds, counts, 0.5); got <= 1 || got >= 10 {
		t.Errorf("single-sample q=0.5 = %v, want inside (1,10)", got)
	}
}

// TestConcurrentUpdates exercises the atomic instruments from many
// goroutines; run under -race this is the registry's thread-safety proof.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("c_total")
			g := r.Gauge("g")
			h := r.Histogram("h_ms", nil)
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 7))
				if i%100 == 0 {
					r.Snapshot() // concurrent scrape
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("c_total").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("g").Value(); got != workers*perWorker {
		t.Errorf("gauge = %v, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("h_ms", nil).Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
}
