package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total")
	g := r.Gauge("x")
	h := r.Histogram("x_ms", nil)
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(1)
	h.Observe(2)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil instruments must read zero")
	}
	if snaps := r.Snapshot(); snaps != nil {
		t.Errorf("nil registry snapshot = %v, want nil", snaps)
	}
	// Nil span / tracer round out the disabled path.
	var span *Span
	span.AddHop(Hop{Kind: "owner"})
	var tr *Tracer
	if tr.Sampled(1) {
		t.Error("nil tracer sampled a request")
	}
	tr.Emit(&Span{})
	if err := tr.Flush(); err != nil {
		t.Errorf("nil tracer flush: %v", err)
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", L("source", "local"))
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Errorf("counter = %d, want 3", c.Value())
	}
	// Same (name, labels) resolves to the same instrument.
	if r.Counter("reqs_total", L("source", "local")) != c {
		t.Error("same series resolved to a different counter")
	}
	// Label order must not matter.
	a := r.Gauge("g", L("a", "1"), L("b", "2"))
	b := r.Gauge("g", L("b", "2"), L("a", "1"))
	if a != b {
		t.Error("label order changed series identity")
	}
	a.Set(4.5)
	a.Add(0.5)
	if b.Value() != 5 {
		t.Errorf("gauge = %v, want 5", b.Value())
	}

	h := r.Histogram("lat_ms", []float64{1, 10, 100})
	for _, x := range []float64{0.5, 5, 50, 500} {
		h.Observe(x)
	}
	if h.Count() != 4 {
		t.Errorf("hist count = %d, want 4", h.Count())
	}
	if h.Sum() != 555.5 {
		t.Errorf("hist sum = %v, want 555.5", h.Sum())
	}
	bounds, cum := h.snapshot()
	if len(bounds) != 3 || len(cum) != 4 {
		t.Fatalf("snapshot shape = %d bounds, %d buckets", len(bounds), len(cum))
	}
	want := []int64{1, 2, 3, 4}
	for i, c := range cum {
		if c != want[i] {
			t.Errorf("cumulative[%d] = %d, want %d", i, c, want[i])
		}
	}
	// Boundary value lands in its bucket (le is inclusive).
	h.Observe(10)
	_, cum = h.snapshot()
	if cum[1] != 3 {
		t.Errorf("le=10 cumulative = %d, want 3 (bound inclusive)", cum[1])
	}
}

// TestKindMismatchIsDetached: re-registering a series under a different kind
// must not corrupt the original; the caller gets a detached instrument.
func TestKindMismatchIsDetached(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	c.Add(7)
	g := r.Gauge("x")
	g.Set(99)
	if c.Value() != 7 {
		t.Errorf("counter corrupted by kind mismatch: %d", c.Value())
	}
	snaps := r.Snapshot()
	if len(snaps) != 1 || snaps[0].Kind != "counter" || snaps[0].Value != 7 {
		t.Errorf("snapshot after mismatch = %+v", snaps)
	}
}

func TestSnapshotSortedAndLabelled(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", L("s", "2")).Inc()
	r.Counter("b_total", L("s", "1")).Inc()
	r.Counter("a_total").Inc()
	snaps := r.Snapshot()
	got := make([]string, len(snaps))
	for i, s := range snaps {
		got[i] = s.Name + s.LabelString()
	}
	want := []string{"a_total", `b_total{s="1"}`, `b_total{s="2"}`}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("snapshot order = %v, want %v", got, want)
	}
}

// TestConcurrentUpdates exercises the atomic instruments from many
// goroutines; run under -race this is the registry's thread-safety proof.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("c_total")
			g := r.Gauge("g")
			h := r.Histogram("h_ms", nil)
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 7))
				if i%100 == 0 {
					r.Snapshot() // concurrent scrape
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("c_total").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("g").Value(); got != workers*perWorker {
		t.Errorf("gauge = %v, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("h_ms", nil).Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
}
