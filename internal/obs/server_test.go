package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatalf("GET %s body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestServeEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("starcdn_test_total", L("source", "local")).Add(3)
	degraded := false
	s, err := Serve("127.0.0.1:0", r, func() Health {
		if degraded {
			return Health{OK: false, Live: 1, Down: []string{"42"}}
		}
		return Health{OK: true, Live: 2, Note: "replaying"}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := s.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	base := "http://" + s.Addr()

	if code, body := get(t, base+"/metrics"); code != 200 ||
		!strings.Contains(body, `starcdn_test_total{source="local"} 3`) {
		t.Errorf("/metrics = %d\n%s", code, body)
	}
	if code, body := get(t, base+"/metrics.json"); code != 200 ||
		!strings.Contains(body, `"starcdn_test_total{source=\"local\"}": 3`) {
		t.Errorf("/metrics.json = %d\n%s", code, body)
	}
	if code, body := get(t, base+"/healthz"); code != 200 ||
		!strings.Contains(body, `"ok": true`) && !strings.Contains(body, `"ok":true`) {
		t.Errorf("healthy /healthz = %d\n%s", code, body)
	}
	degraded = true
	if code, body := get(t, base+"/healthz"); code != http.StatusServiceUnavailable ||
		!strings.Contains(body, `"42"`) {
		t.Errorf("degraded /healthz = %d\n%s", code, body)
	}
	if code, body := get(t, base+"/debug/pprof/"); code != 200 ||
		!strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d", code)
	}
}

// TestServeNilRegistry: profiling must work without metrics.
func TestServeNilRegistry(t *testing.T) {
	s, err := Serve("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := s.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	base := "http://" + s.Addr()
	if code, _ := get(t, base+"/metrics"); code != 200 {
		t.Errorf("/metrics with nil registry = %d", code)
	}
	if code, body := get(t, base+"/healthz"); code != 200 || !strings.Contains(body, "true") {
		t.Errorf("nil health func /healthz = %d %s", code, body)
	}
}
