package obs

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestSparklineDegenerate: the SVG layout must survive the three degenerate
// windows a fresh or partially-NaN recorder produces — no points, all-NaN
// points, and a single valid sample — without emitting "NaN" coordinates or
// an invisible one-coordinate polyline.
func TestSparklineDegenerate(t *testing.T) {
	if ch := sparkline("k", nil); !ch.Empty || ch.Points != "" {
		t.Errorf("nil points: %+v, want Empty with no Points", ch)
	}
	nan := math.NaN()
	allNaN := []Point{{T: 1, V: nan}, {T: 2, V: nan}, {T: 3, V: math.Inf(1)}}
	if ch := sparkline("k", allNaN); !ch.Empty || ch.Points != "" || ch.Last != "–" {
		t.Errorf("all-NaN points: %+v, want Empty dash", ch)
	}
	single := []Point{{T: 1, V: nan}, {T: 2, V: 7.5}}
	ch := sparkline("k", single)
	if ch.Empty {
		t.Fatalf("single valid sample marked Empty: %+v", ch)
	}
	if ch.Last != "7.5" {
		t.Errorf("Last = %q, want 7.5", ch.Last)
	}
	// The dash must be a two-coordinate polyline with finite coordinates.
	coords := strings.Fields(ch.Points)
	if len(coords) != 2 {
		t.Fatalf("single-sample Points = %q, want two coordinates", ch.Points)
	}
	if strings.Contains(ch.Points, "NaN") {
		t.Errorf("NaN leaked into Points %q", ch.Points)
	}
	// Equal-min/max series (flat line) must not divide by zero either.
	flat := []Point{{T: 1, V: 3}, {T: 2, V: 3}, {T: 3, V: 3}}
	ch = sparkline("k", flat)
	if ch.Empty || strings.Contains(ch.Points, "NaN") {
		t.Errorf("flat series: %+v", ch)
	}
}

// TestTimeseriesFreshRecorder: a recorder that has never ticked — and one
// holding only a single epoch — must serve every form of /timeseries.json
// with 200 and valid JSON, with unobserved series rendered as nulls, never
// a 500 or a bare NaN token.
func TestTimeseriesFreshRecorder(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("starcdn_test_events_total")
	reg.Gauge("starcdn_test_depth") // never Set: snapshots as 0
	rec := NewRecorder(reg, RecorderOptions{EpochSec: 1})

	get := func(q string) (*httptest.ResponseRecorder, map[string]any) {
		t.Helper()
		req := httptest.NewRequest(http.MethodGet, "/timeseries.json"+q, nil)
		w := httptest.NewRecorder()
		rec.handleTimeseries(w, req)
		var body map[string]any
		if w.Code == http.StatusOK {
			if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
				t.Fatalf("%s: bad JSON: %v\n%s", q, err, w.Body.String())
			}
		}
		return w, body
	}

	for _, q := range []string{"", "?form=delta", "?form=rate", "?window=10"} {
		w, body := get(q)
		if w.Code != http.StatusOK {
			t.Fatalf("fresh recorder %q status = %d\n%s", q, w.Code, w.Body.String())
		}
		if body["epochs"].(float64) != 0 {
			t.Errorf("fresh recorder %q epochs = %v", q, body["epochs"])
		}
		if strings.Contains(w.Body.String(), "NaN") {
			t.Errorf("fresh recorder %q emitted NaN:\n%s", q, w.Body.String())
		}
	}

	// One tick: every series holds exactly one sample, which delta/rate forms
	// collapse to empty (len < 2) rather than dividing by a zero dt.
	rec.TickAt(1)
	for _, q := range []string{"", "?form=delta", "?form=rate"} {
		w, body := get(q)
		if w.Code != http.StatusOK {
			t.Fatalf("single-epoch %q status = %d", q, w.Code)
		}
		series := body["series"].(map[string]any)
		s, ok := series["starcdn_test_events_total"].(map[string]any)
		if !ok {
			// delta/rate forms may drop single-sample series entirely; that
			// is fine as long as the document itself is well-formed.
			continue
		}
		vs := s["v"].([]any)
		if q == "" && len(vs) != 1 {
			t.Errorf("raw single-epoch v = %v, want one point", vs)
		}
		if q != "" && len(vs) != 0 {
			t.Errorf("%s single-epoch v = %v, want empty", q, vs)
		}
	}

	// A topk instrument with unfilled ranks records NaN points; the handler
	// must render them as JSON nulls.
	reg.TopK("starcdn_popularity_objects", 4).Observe("only-key", 1)
	rec.TickAt(2)
	w, body := get("?match=rank")
	if w.Code != http.StatusOK {
		t.Fatalf("NaN-bearing series status = %d", w.Code)
	}
	if strings.Contains(w.Body.String(), "NaN") {
		t.Errorf("NaN leaked into JSON:\n%s", w.Body.String())
	}
	series := body["series"].(map[string]any)
	r2 := series[`starcdn_popularity_objects_topk{rank="2"}`].(map[string]any)
	for _, v := range r2["v"].([]any) {
		if v != nil {
			t.Errorf("unfilled rank point = %v, want null", v)
		}
	}
}

// TestDashboardDegenerateSeries: the dashboard must render — valid SVG, no
// NaN coordinates — over a fresh recorder, an all-NaN series, and
// single-sample series.
func TestDashboardDegenerateSeries(t *testing.T) {
	reg := NewRegistry()
	rec := NewRecorder(reg, RecorderOptions{EpochSec: 1})

	render := func() string {
		t.Helper()
		req := httptest.NewRequest(http.MethodGet, "/dashboard", nil)
		w := httptest.NewRecorder()
		rec.handleDashboard(reg, nil, nil, nil)(w, req)
		if w.Code != http.StatusOK {
			t.Fatalf("dashboard status = %d", w.Code)
		}
		return w.Body.String()
	}

	// Fresh recorder: zero series, zero epochs.
	out := render()
	if !strings.Contains(out, "<html") {
		t.Fatalf("fresh dashboard is not HTML:\n%.200s", out)
	}

	// An all-NaN ring (a topk rank that never fills) plus a single-sample
	// counter: polylines must carry no NaN coordinates.
	reg.TopK("starcdn_popularity_objects", 4).Observe("k", 1)
	reg.Counter("starcdn_test_events_total").Inc()
	rec.TickAt(1)
	out = render()
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "points=") && strings.Contains(line, "NaN") {
			t.Errorf("NaN coordinate in sparkline: %q", line)
		}
	}
	if !strings.Contains(out, "starcdn_test_events_total") {
		t.Errorf("dashboard missing single-sample series:\n%.400s", out)
	}
}

// TestDeltaAcrossCounterReset: Delta must follow the increase() convention
// across a counter reset — the motivating scenario being a replay server
// killed and revived mid-window, whose re-registered meters restart from
// zero. A decrease between adjacent epochs counts the post-reset value as
// that epoch's accrual, so the windowed delta stays monotone non-negative.
func TestDeltaAcrossCounterReset(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("starcdn_test_restarting_total")
	rec := NewRecorder(reg, RecorderOptions{EpochSec: 1})
	// Epochs: 5, 10 — kill + revive, counter restarts — 2, 4.
	for i, v := range []float64{5, 10, 2, 4} {
		g.Set(v)
		rec.TickAt(float64(i + 1))
	}
	// increase(): 5 (birth) + 5 + 2 (reset: count accrual from zero) + 2.
	if d, ok := rec.Delta("starcdn_test_restarting_total", 0); !ok || d != 14 {
		t.Errorf("Delta across reset = %v (ok=%v), want 14", d, ok)
	}
	// Windowed: only epochs 3 and 4 (t > 2). The pre-window value 10 is the
	// baseline; the in-window reset to 2 counts 2, then +2.
	if d, ok := rec.Delta("starcdn_test_restarting_total", 2); !ok || d != 4 {
		t.Errorf("windowed Delta across reset = %v (ok=%v), want 4", d, ok)
	}
	// The delta form of the timeseries endpoint clamps the same way.
	req := httptest.NewRequest(http.MethodGet, "/timeseries.json?form=delta&match=restarting", nil)
	w := httptest.NewRecorder()
	rec.handleTimeseries(w, req)
	var body struct {
		Series map[string]struct {
			V []*float64 `json:"v"`
		} `json:"series"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	for _, s := range body.Series {
		for i, v := range s.V {
			if v != nil && *v < 0 {
				t.Errorf("delta point %d = %v, want non-negative across reset", i, *v)
			}
		}
	}
}

// TestHistQuantileAcrossCounterReset: histogram bucket rings route through
// the same reset-aware Delta, so a mid-window histogram restart (bucket
// counts dropping) must still yield a sane windowed quantile instead of
// negative bucket counts.
func TestHistQuantileAcrossCounterReset(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("starcdn_test_latency_ms", []float64{1, 10, 100})
	rec := NewRecorder(reg, RecorderOptions{EpochSec: 1})
	for i := 0; i < 5; i++ {
		h.Observe(5)
	}
	rec.TickAt(1)
	// Simulate the revived server's fresh histogram: a new registry series
	// cannot replace the old one in-place, so model the restart by zeroing
	// the instrument the rings read from (same package — test-only access).
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.Observe(50)
	rec.TickAt(2)
	bounds, counts, ok := rec.HistogramWindow("starcdn_test_latency_ms", 0)
	if !ok {
		t.Fatal("HistogramWindow not ok")
	}
	var total int64
	for i, c := range counts {
		if c < 0 {
			t.Errorf("bucket %d count = %d, want non-negative across reset", i, c)
		}
		total += c
	}
	if total < 6 {
		t.Errorf("windowed samples = %d, want ≥ 6 (5 pre-reset + 1 post)", total)
	}
	q := HistQuantile(bounds, counts, 0.5)
	if math.IsNaN(q) || q < 0 {
		t.Errorf("median across reset = %v, want finite non-negative", q)
	}
}
