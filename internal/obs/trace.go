package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Hop is one step of a request's serving path. Kind names the role of the
// hop in StarCDN's §3.3 request flow: "first-contact", "owner" (consistent
// hashing route), "relay-west"/"relay-east" (same-bucket neighbour fetch),
// "ground" (GSL + origin fetch), and "user-link" (terminal round trip).
type Hop struct {
	Kind string `json:"kind"`
	// Sat is the satellite serving this hop (-1 when none, e.g. ground).
	Sat int `json:"sat"`
	// ISLHops counts inter-satellite link hops traversed for this step.
	ISLHops int `json:"isl_hops,omitempty"`
	// SimMs is the simulated latency contribution (the simulator fills it).
	SimMs float64 `json:"sim_ms,omitempty"`
	// WallMs is the measured wall-clock latency (the TCP replayer fills it).
	WallMs float64 `json:"wall_ms,omitempty"`
}

// Span is one sampled request's trace record, serialised as a JSONL line by
// the Tracer and consumed by cmd/starcdn-trace.
type Span struct {
	// Req is the request's index in the trace (the sampling key).
	Req int64 `json:"req"`
	// TimeSec is the trace timestamp of the request.
	TimeSec float64 `json:"t"`
	// Loc is the trace location (user terminal) index.
	Loc int `json:"loc"`
	// Object and Size identify the requested content.
	Object uint64 `json:"obj"`
	Size   int64  `json:"size"`
	// Source is the stable sim.Source name of where the request was served.
	Source string `json:"source"`
	// Hit reports whether the request counted as a satellite cache hit.
	Hit bool `json:"hit"`
	// SimMs / WallMs are the end-to-end latencies (whichever pipeline ran).
	SimMs  float64 `json:"sim_ms,omitempty"`
	WallMs float64 `json:"wall_ms,omitempty"`
	// Hops is the serving path in traversal order.
	Hops []Hop `json:"hops,omitempty"`
}

// AddHop appends one hop to the span. It is nil-safe so instrumentation can
// call it unconditionally on the (usually nil) sampled span.
func (s *Span) AddHop(h Hop) {
	if s == nil {
		return
	}
	s.Hops = append(s.Hops, h)
}

// Tracer samples request-path spans and streams them as JSONL. Sampling is a
// pure function of (seed, request index), so the set of sampled requests is
// deterministic and identical between the sequential simulator and the
// concurrent TCP replayer regardless of goroutine interleaving — and,
// critically, the decision consumes no randomness from the simulation's
// seeded streams, so enabling tracing cannot perturb results.
//
// Emission is serialised by a mutex; concurrent replay workers may emit
// simultaneously. A nil *Tracer never samples and ignores emissions.
type Tracer struct {
	rate float64
	seed int64

	mu      sync.Mutex
	w       *bufio.Writer
	enc     *json.Encoder
	emitted int64
	err     error
}

// NewTracer returns a tracer writing JSONL spans to w, sampling each request
// independently at rate (0 disables, 1 samples everything) keyed by seed.
func NewTracer(w io.Writer, rate float64, seed int64) *Tracer {
	bw := bufio.NewWriter(w)
	return &Tracer{rate: rate, seed: seed, w: bw, enc: json.NewEncoder(bw)}
}

// splitmix64 is the SplitMix64 finaliser: a high-quality 64-bit mix used as
// a stateless per-request hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Sampled reports whether the request at index req is in the sample. It is
// stateless and safe for concurrent use; a nil tracer samples nothing.
func (t *Tracer) Sampled(req int64) bool {
	if t == nil || t.rate <= 0 {
		return false
	}
	if t.rate >= 1 {
		return true
	}
	h := splitmix64(uint64(t.seed)*0x9e3779b97f4a7c15 + uint64(req))
	return float64(h>>11)/float64(1<<53) < t.rate
}

// Emit writes one span as a JSONL line. The first write error is retained
// and reported by Flush; emission never blocks the replay on error handling.
func (t *Tracer) Emit(s *Span) {
	if t == nil || s == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	if err := t.enc.Encode(s); err != nil {
		t.err = err
		return
	}
	t.emitted++
}

// Emitted returns the number of spans written so far (0 on nil).
func (t *Tracer) Emitted() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.emitted
}

// Flush drains the buffered writer and returns the first error encountered
// during emission or flushing. Callers flush once after the run, before
// closing the underlying file. Nil-safe.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// ReadSpans parses a JSONL span stream (the -trace-out format) back into
// memory, for the starcdn-trace summarizer and tests.
func ReadSpans(r io.Reader) ([]Span, error) {
	dec := json.NewDecoder(r)
	var out []Span
	for {
		var s Span
		if err := dec.Decode(&s); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, fmt.Errorf("obs: span %d: %w", len(out), err)
		}
		out = append(out, s)
	}
}
