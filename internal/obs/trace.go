package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// Hop is one step of a request's serving path. Kind names the role of the
// hop in StarCDN's §3.3 request flow: "first-contact", "owner" (consistent
// hashing route), "relay-west"/"relay-east" (same-bucket neighbour fetch),
// "ground" (GSL + origin fetch), and "user-link" (terminal round trip).
type Hop struct {
	Kind string `json:"kind"`
	// Sat is the satellite serving this hop (-1 when none, e.g. ground).
	Sat int `json:"sat"`
	// ISLHops counts inter-satellite link hops traversed for this step.
	ISLHops int `json:"isl_hops,omitempty"`
	// SimMs is the simulated latency contribution (the simulator fills it).
	SimMs float64 `json:"sim_ms,omitempty"`
	// WallMs is the measured wall-clock latency (the TCP replayer fills it).
	WallMs float64 `json:"wall_ms,omitempty"`
	// SpanID is the hop's span identity (16 hex chars) when cross-process
	// trace propagation is on: remote spans emitted by the server this hop
	// contacted carry it as their Parent, which is how starcdn-trace
	// -assemble stitches multi-process span files into one tree.
	SpanID string `json:"span,omitempty"`
}

// Span is one sampled request's trace record, serialised as a JSONL line by
// the Tracer and consumed by cmd/starcdn-trace.
type Span struct {
	// Req is the request's index in the trace (the sampling key).
	Req int64 `json:"req"`
	// TimeSec is the trace timestamp of the request.
	TimeSec float64 `json:"t"`
	// Loc is the trace location (user terminal) index.
	Loc int `json:"loc"`
	// Object and Size identify the requested content.
	Object uint64 `json:"obj"`
	Size   int64  `json:"size"`
	// Source is the stable sim.Source name of where the request was served.
	Source string `json:"source"`
	// Hit reports whether the request counted as a satellite cache hit.
	Hit bool `json:"hit"`
	// SimMs / WallMs are the end-to-end latencies (whichever pipeline ran).
	SimMs  float64 `json:"sim_ms,omitempty"`
	WallMs float64 `json:"wall_ms,omitempty"`
	// Hops is the serving path in traversal order.
	Hops []Hop `json:"hops,omitempty"`

	// Distributed-trace identity (all omitempty, so span files written by
	// pre-v2 builds parse unchanged). TraceID is 32 hex chars (128 bits),
	// SpanID/Parent are 16 hex chars (64 bits). A span with a TraceID and no
	// Parent is a trace root (the client-side request span); every other
	// span attaches beneath the span named by Parent — possibly one emitted
	// by a different process into a different JSONL file.
	TraceID string `json:"trace,omitempty"`
	SpanID  string `json:"span,omitempty"`
	Parent  string `json:"parent,omitempty"`
	// Proc names the emitting process role ("client", "sim", "sat-<id>").
	Proc string `json:"proc,omitempty"`
	// Kind labels non-root spans with the operation they cover (a wire op
	// like "get"/"contains"/"admit" for server spans, "retry" for client
	// retry/backoff spans). Roots leave it empty; their Source says enough.
	Kind string `json:"kind,omitempty"`
}

// AddHop appends one hop to the span. It is nil-safe so instrumentation can
// call it unconditionally on the (usually nil) sampled span.
func (s *Span) AddHop(h Hop) {
	if s == nil {
		return
	}
	s.Hops = append(s.Hops, h)
}

// SpanContext is the trace identity carried across process boundaries (the
// replayer encodes it into a wire extension frame). The zero value means "no
// context"; Sampled gates whether downstream processes should emit spans.
type SpanContext struct {
	TraceHi, TraceLo uint64 // 128-bit trace ID
	Parent           uint64 // span the next remote operation nests under
	Sampled          bool
}

// TraceString renders the 128-bit trace ID as 32 hex characters, the form
// stored in Span.TraceID.
func (sc SpanContext) TraceString() string {
	return fmt.Sprintf("%016x%016x", sc.TraceHi, sc.TraceLo)
}

// SpanIDString renders a 64-bit span ID as 16 hex characters.
func SpanIDString(id uint64) string { return fmt.Sprintf("%016x", id) }

// DeriveTraceID derives the deterministic 128-bit trace ID of request index
// req under the given sampling seed. Like the sampling decision itself it is
// a pure splitmix64 mix of (seed, request index): the same seeded run always
// names its traces identically — which is how the in-process simulator and
// the multi-process TCP replayer produce cross-referenceable trace files —
// and no simulation RNG stream is ever consulted.
func DeriveTraceID(seed, req int64) (hi, lo uint64) {
	base := uint64(seed)*0x9e3779b97f4a7c15 + uint64(req)
	hi = splitmix64(base ^ 0x5ca1ab1e0ddba11)
	lo = splitmix64(base + 0x9e3779b97f4a7c15)
	if hi == 0 && lo == 0 { // the all-zero trace ID is reserved for "unset"
		lo = 1
	}
	return hi, lo
}

// DeriveSpanID names the n-th deterministic span of a trace (n=0 is the
// root; client-side hops use their 1-based hop ordinal). Remote processes,
// whose span multiplicity is not known up front, draw from Tracer.NewSpanID
// instead.
func DeriveSpanID(hi, lo uint64, n uint64) uint64 {
	id := splitmix64(hi ^ splitmix64(lo+n*0xbf58476d1ce4e5b9))
	if id == 0 {
		id = 1
	}
	return id
}

// Tracer samples request-path spans and streams them as JSONL. Sampling is a
// pure function of (seed, request index), so the set of sampled requests is
// deterministic and identical between the sequential simulator and the
// concurrent TCP replayer regardless of goroutine interleaving — and,
// critically, the decision consumes no randomness from the simulation's
// seeded streams, so enabling tracing cannot perturb results.
//
// Emission is serialised by a mutex; concurrent replay workers may emit
// simultaneously. A nil *Tracer never samples and ignores emissions.
type Tracer struct {
	rate float64
	seed int64

	spanSeq atomic.Uint64 // NewSpanID allocation counter

	mu      sync.Mutex
	w       *bufio.Writer
	enc     *json.Encoder
	emitted int64
	err     error
}

// NewTracer returns a tracer writing JSONL spans to w, sampling each request
// independently at rate (0 disables, 1 samples everything) keyed by seed.
func NewTracer(w io.Writer, rate float64, seed int64) *Tracer {
	bw := bufio.NewWriter(w)
	return &Tracer{rate: rate, seed: seed, w: bw, enc: json.NewEncoder(bw)}
}

// splitmix64 is the SplitMix64 finaliser: a high-quality 64-bit mix used as
// a stateless per-request hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Sampled reports whether the request at index req is in the sample. It is
// stateless and safe for concurrent use; a nil tracer samples nothing.
func (t *Tracer) Sampled(req int64) bool {
	if t == nil || t.rate <= 0 {
		return false
	}
	if t.rate >= 1 {
		return true
	}
	h := splitmix64(uint64(t.seed)*0x9e3779b97f4a7c15 + uint64(req))
	return float64(h>>11)/float64(1<<53) < t.rate
}

// TraceID returns the deterministic trace ID of request index req under this
// tracer's sampling seed (see DeriveTraceID). Nil tracers return zeros.
func (t *Tracer) TraceID(req int64) (hi, lo uint64) {
	if t == nil {
		return 0, 0
	}
	return DeriveTraceID(t.seed, req)
}

// NewSpanID allocates a process-locally unique span ID for spans whose
// multiplicity is not a pure function of the request index (server-side
// operation spans, client retry spans). IDs mix the tracer seed with an
// atomic sequence number: unique within one emitting process, reproducible
// across runs whenever the emission order is (e.g. a sequential replay).
func (t *Tracer) NewSpanID() uint64 {
	if t == nil {
		return 0
	}
	n := t.spanSeq.Add(1)
	id := splitmix64(uint64(t.seed)*0x94d049bb133111eb + n)
	if id == 0 {
		id = 1
	}
	return id
}

// Emit writes one span as a JSONL line. The first write error is retained
// and reported by Flush; emission never blocks the replay on error handling.
func (t *Tracer) Emit(s *Span) {
	if t == nil || s == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	if err := t.enc.Encode(s); err != nil {
		t.err = err
		return
	}
	t.emitted++
}

// Emitted returns the number of spans written so far (0 on nil).
func (t *Tracer) Emitted() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.emitted
}

// Flush drains the buffered writer and returns the first error encountered
// during emission or flushing. Callers flush once after the run, before
// closing the underlying file. Nil-safe.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// ReadSpans parses a JSONL span stream (the -trace-out format) back into
// memory, for the starcdn-trace summarizer and tests.
func ReadSpans(r io.Reader) ([]Span, error) {
	dec := json.NewDecoder(r)
	var out []Span
	for {
		var s Span
		if err := dec.Decode(&s); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, fmt.Errorf("obs: span %d: %w", len(out), err)
		}
		out = append(out, s)
	}
}
