package obs

import (
	"encoding/json"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// popularitySeries is one sketch-backed series on /popularity.json: either
// a top-K popularity summary (Entries set) or a quantile sketch (Quantiles
// set). Unlike the Prometheus exposition, this surface carries the full
// keyed entries and their trace exemplars — it is the "which objects are
// hot, and give me a trace of one" endpoint.
type popularitySeries struct {
	Name      string             `json:"name"`
	Labels    map[string]string  `json:"labels,omitempty"`
	Kind      string             `json:"kind"`
	N         int64              `json:"n,omitempty"`
	Entries   []TopKEntry        `json:"entries,omitempty"`
	Count     int64              `json:"count,omitempty"`
	Quantiles map[string]float64 `json:"quantiles,omitempty"`
	Exemplars map[string]any     `json:"exemplars,omitempty"`
}

// handlePopularity serves /popularity.json: every top-K and quantile-sketch
// series of the registry, full detail, deterministically ordered. Query
// params: ?k=N truncates top-K entries (default: all tracked); ?match=substr
// filters by series name.
func handlePopularity(reg *Registry) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		match := req.URL.Query().Get("match")
		maxK := 0
		if s := req.URL.Query().Get("k"); s != "" {
			if v, err := strconv.Atoi(s); err == nil && v > 0 {
				maxK = v
			}
		}
		out := struct {
			Series []popularitySeries `json:"series"`
		}{Series: []popularitySeries{}}
		for _, s := range reg.Snapshot() {
			if s.Kind != "topk" && s.Kind != "sketch" {
				continue
			}
			if match != "" && !strings.Contains(s.Name, match) {
				continue
			}
			ps := popularitySeries{Name: s.Name, Kind: s.Kind}
			if len(s.Labels) > 0 {
				ps.Labels = make(map[string]string, len(s.Labels))
				for _, l := range s.Labels {
					ps.Labels[l.Key] = l.Value
				}
			}
			switch s.Kind {
			case "topk":
				ps.N = s.TopKN
				entries := s.TopK
				if maxK > 0 && len(entries) > maxK {
					entries = entries[:maxK]
				}
				ps.Entries = entries
			case "sketch":
				ps.Count = s.SketchCount
				ps.Quantiles = make(map[string]float64, len(s.SketchQ))
				for i, q := range SketchQuantiles {
					if i >= len(s.SketchQ) || math.IsNaN(s.SketchQ[i]) {
						continue
					}
					ps.Quantiles[formatFloat(q)] = s.SketchQ[i]
					if i < len(s.SketchExemplars) && s.SketchExemplars[i].Valid() {
						if ps.Exemplars == nil {
							ps.Exemplars = make(map[string]any)
						}
						ps.Exemplars[formatFloat(q)] = s.SketchExemplars[i]
					}
				}
			}
			out.Series = append(out.Series, ps)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(out)
	}
}
