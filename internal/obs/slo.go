package obs

import (
	"fmt"
	"math"
	"sync"
)

// SLO is one service-level objective evaluated per recorder epoch over a
// sliding window. Exactly one of the two objective forms is used:
//
//   - Quantile objective: Series names a recorded histogram (canonical
//     name{labels} key, without the _bucket suffix) and the objective is
//     "quantile Q of the window's samples stays <= MaxValue" — e.g. "p99
//     request latency <= 50ms over 5 min".
//   - Ratio objective: Good and Total name cumulative series (counters or
//     histogram _count series) and the objective is "ΔGood/ΔTotal over the
//     window stays >= MinRatio" — e.g. "hit rate >= 60% over 1 min".
//
// A quantile objective with Sketch set targets a recorded quantile-sketch
// series instead of a histogram: the engine reads the sketch's recorded
// `<name>_q{q="..."}` ring, so Quantile must be one of SketchQuantiles.
// Sketch quantiles are running (whole-stream) values with a relative-error
// guarantee, where histogram quantiles are windowed with fixed-bucket
// interpolation error — pick per objective.
//
// Epochs whose window holds no samples are skipped (no breach, no budget
// burn): an idle system is not failing its objectives.
type SLO struct {
	// Name labels the exported starcdn_slo_* series ({slo="<name>"}).
	Name string

	// Quantile objective.
	Series   string  // recorded histogram (or sketch) key, e.g. `starcdn_sim_latency_ms`
	Quantile float64 // e.g. 0.99
	MaxValue float64 // inclusive upper bound on the windowed quantile
	// Sketch marks Series as a quantile-sketch series rather than a
	// histogram; Quantile must then be one of SketchQuantiles.
	Sketch bool

	// Ratio objective.
	Good     string  // cumulative "good events" series key
	Total    string  // cumulative "total events" series key
	MinRatio float64 // inclusive lower bound on ΔGood/ΔTotal

	// WindowSec is the sliding evaluation window (0 selects 60s).
	WindowSec float64
	// BudgetFraction is the tolerated fraction of breaching epochs (the
	// error budget), e.g. 0.01 for 99% compliant epochs. 0 selects 0.01.
	BudgetFraction float64
}

// ratio reports whether this is a ratio-form objective.
func (s SLO) ratio() bool { return s.Good != "" }

// Validate rejects malformed objectives before an engine is built on them.
func (s SLO) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("obs: SLO needs a name")
	}
	switch {
	case s.ratio():
		if s.Series != "" {
			return fmt.Errorf("obs: SLO %s mixes ratio and quantile forms", s.Name)
		}
		if s.Total == "" {
			return fmt.Errorf("obs: SLO %s has Good without Total", s.Name)
		}
		if s.MinRatio < 0 || s.MinRatio > 1 {
			return fmt.Errorf("obs: SLO %s MinRatio %v outside [0,1]", s.Name, s.MinRatio)
		}
	case s.Series != "":
		if s.Quantile <= 0 || s.Quantile > 1 {
			return fmt.Errorf("obs: SLO %s quantile %v outside (0,1]", s.Name, s.Quantile)
		}
		if s.Sketch {
			found := false
			for _, q := range SketchQuantiles {
				if q == s.Quantile {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("obs: SLO %s targets sketch quantile %v, but only %v are recorded",
					s.Name, s.Quantile, SketchQuantiles)
			}
		}
	default:
		return fmt.Errorf("obs: SLO %s names no objective series", s.Name)
	}
	return nil
}

// sloState is one objective's exported instruments and breach history.
type sloState struct {
	spec SLO

	value   *Gauge   // current windowed value (quantile or ratio)
	breach  *Gauge   // 1 when the current epoch breaches, else 0
	burn    *Gauge   // window breach fraction / budget fraction
	budget  *Gauge   // remaining error budget fraction (can go negative)
	breakC  *Counter // total breaching epochs
	evals   int64    // evaluated epochs (window held samples)
	breaks  int64    // breaching epochs
	history []bool   // breach bits of the last window's evaluated epochs
}

// SLOEngine evaluates a set of SLOs on every recorder epoch and exports the
// results back into the registry as starcdn_slo_* series — which the recorder
// then captures like any other series, so burn rates are themselves queryable
// time series on /timeseries.json. The engine also contributes to /healthz:
// Burning lists objectives whose burn rate exceeds 1 (spending error budget
// faster than allowed).
type SLOEngine struct {
	rec *Recorder

	mu    sync.Mutex
	slos  []*sloState
	epoch int64
}

// NewSLOEngine validates the objectives, registers their exported series in
// reg, and hooks evaluation into the recorder's epochs. A nil recorder or
// empty slos returns a nil engine (whose methods no-op), so callers can wire
// it unconditionally.
func NewSLOEngine(rec *Recorder, reg *Registry, slos []SLO) (*SLOEngine, error) {
	if rec == nil || len(slos) == 0 {
		return nil, nil
	}
	e := &SLOEngine{rec: rec}
	for _, s := range slos {
		if err := s.Validate(); err != nil {
			return nil, err
		}
		if s.WindowSec <= 0 {
			s.WindowSec = 60
		}
		if s.BudgetFraction <= 0 {
			s.BudgetFraction = 0.01
		}
		l := L("slo", s.Name)
		e.slos = append(e.slos, &sloState{
			spec:   s,
			value:  reg.Gauge("starcdn_slo_value", l),
			breach: reg.Gauge("starcdn_slo_breach", l),
			burn:   reg.Gauge("starcdn_slo_burn_rate", l),
			budget: reg.Gauge("starcdn_slo_budget_remaining", l),
			breakC: reg.Counter("starcdn_slo_breaches_total", l),
		})
	}
	rec.OnEpoch(e.evaluate)
	return e, nil
}

// evaluate runs every objective against the recorder's latest window.
func (e *SLOEngine) evaluate(float64) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.epoch++
	for _, st := range e.slos {
		v, ok := e.windowValue(st.spec)
		if !ok {
			continue // idle window: no evaluation, no budget burn
		}
		st.value.Set(v)
		breach := false
		if st.spec.ratio() {
			breach = v < st.spec.MinRatio
		} else {
			breach = v > st.spec.MaxValue
		}
		st.evals++
		if breach {
			st.breaks++
			st.breach.Set(1)
			st.breakC.Inc()
		} else {
			st.breach.Set(0)
		}
		// History holds the breach bits of the evaluated epochs inside one
		// window; the burn rate is their breach fraction over the budget.
		maxLen := int(st.spec.WindowSec / e.rec.EpochSec())
		if maxLen < 1 {
			maxLen = 1
		}
		st.history = append(st.history, breach)
		if len(st.history) > maxLen {
			st.history = st.history[len(st.history)-maxLen:]
		}
		var windowBreaks int
		for _, b := range st.history {
			if b {
				windowBreaks++
			}
		}
		burn := float64(windowBreaks) / float64(len(st.history)) / st.spec.BudgetFraction
		st.burn.Set(burn)
		st.budget.Set(1 - float64(st.breaks)/float64(st.evals)/st.spec.BudgetFraction)
	}
}

// SLOStatus is one objective's current state, for the dashboard.
type SLOStatus struct {
	Name      string
	Objective string  // human-readable objective description
	Value     float64 // current windowed value
	Breach    bool    // current epoch breaches
	BurnRate  float64
	Budget    float64 // remaining error budget fraction
	Evals     int64   // evaluated epochs
}

// Describe renders the objective in one line.
func (s SLO) Describe() string {
	if s.ratio() {
		return fmt.Sprintf("%s/%s >= %g over %gs", s.Good, s.Total, s.MinRatio, s.WindowSec)
	}
	if s.Sketch {
		return fmt.Sprintf("sketch p%g(%s) <= %g", s.Quantile*100, s.Series, s.MaxValue)
	}
	return fmt.Sprintf("p%g(%s) <= %g over %gs", s.Quantile*100, s.Series, s.MaxValue, s.WindowSec)
}

// Snapshot freezes every objective's current state (nil-safe).
func (e *SLOEngine) Snapshot() []SLOStatus {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]SLOStatus, 0, len(e.slos))
	for _, st := range e.slos {
		out = append(out, SLOStatus{
			Name:      st.spec.Name,
			Objective: st.spec.Describe(),
			Value:     st.value.Value(),
			Breach:    st.breach.Value() > 0,
			BurnRate:  st.burn.Value(),
			Budget:    st.budget.Value(),
			Evals:     st.evals,
		})
	}
	return out
}

// Burning returns the names of objectives currently spending error budget
// faster than allowed (burn rate > 1), sorted by declaration order. Nil-safe.
func (e *SLOEngine) Burning() []string {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []string
	for _, st := range e.slos {
		if st.burn.Value() > 1 {
			out = append(out, st.spec.Name)
		}
	}
	return out
}

// MaxBurn returns the highest burn rate across all objectives as of the
// last evaluated epoch (0 before any evaluation, and for nil engines).
// This is the scalar signal a shed.Controller consumes via SetBurn when
// shedding is driven by wall-clock SLOs instead of the deterministic
// degraded-fraction mode.
func (e *SLOEngine) MaxBurn() float64 {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	var max float64
	for _, st := range e.slos {
		if b := st.burn.Value(); b > max {
			max = b
		}
	}
	return max
}

// Health folds the engine into a HealthFunc: it wraps base (nil meaning
// always-OK) and degrades the answer when any objective is burning, listing
// the burning SLOs alongside any backends base reported down. Nil engines
// return base unchanged, so wiring is unconditional.
func (e *SLOEngine) Health(base HealthFunc) HealthFunc {
	if e == nil {
		return base
	}
	return func() Health {
		h := Health{OK: true}
		if base != nil {
			h = base()
		}
		burning := e.Burning()
		if len(burning) > 0 {
			h.OK = false
			for _, name := range burning {
				h.Down = append(h.Down, "slo:"+name)
			}
			if h.Note == "" {
				h.Note = "slo burn"
			}
		}
		return h
	}
}

// windowValue computes the objective's current windowed value.
func (e *SLOEngine) windowValue(s SLO) (float64, bool) {
	if s.ratio() {
		total, ok := e.rec.Delta(s.Total, s.WindowSec)
		if !ok || total <= 0 {
			return 0, false
		}
		good, _ := e.rec.Delta(s.Good, s.WindowSec)
		return good / total, true
	}
	if s.Sketch {
		// The recorder fans a sketch series out into one ring per recorded
		// quantile; the objective reads that ring's freshest in-window value
		// (the running quantile as of the latest epoch).
		name, labels := splitSeriesKey(s.Series)
		key := derivedRingKey(name+"_q", labels, "q", formatFloat(s.Quantile))
		pts := e.rec.Window(key, s.WindowSec)
		for i := len(pts) - 1; i >= 0; i-- {
			if !math.IsNaN(pts[i].V) {
				return pts[i].V, true
			}
		}
		return 0, false
	}
	bounds, delta, ok := e.rec.HistogramWindow(s.Series, s.WindowSec)
	if !ok {
		return 0, false
	}
	q := HistQuantile(bounds, delta, s.Quantile)
	if math.IsNaN(q) {
		return 0, false
	}
	return q, true
}
