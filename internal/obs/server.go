package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Health is the /healthz payload. OK=false answers with HTTP 503, so
// orchestration probes observe cluster degradation (killed satellite
// servers) directly.
type Health struct {
	OK bool `json:"ok"`
	// Live counts healthy serving backends (cluster cache servers).
	Live int `json:"live"`
	// Down lists degraded backends (killed, not yet revived satellites).
	Down []string `json:"down,omitempty"`
	// Note carries free-form state ("replaying", "idle", ...).
	Note string `json:"note,omitempty"`
	// Shed is the active overload-control stage ("stage-0" .. "stage-3")
	// when a shed controller is wired in; empty otherwise. Shedding does
	// not flip OK — it is the system protecting itself, not an outage.
	Shed string `json:"shed,omitempty"`
	// Runtime is the compact runtime-bridge line (goroutines, heap bytes,
	// last GC pause, sched latency), filled from ServeOptions.Runtime when
	// the health source leaves it empty.
	Runtime string `json:"runtime,omitempty"`
}

// ShedStatus is a snapshot of the overload controller for dashboards and
// health bodies. It lives here (not in internal/shed) so the obs layer can
// render it without importing the controller: shed imports obs for its
// metrics, so the dependency must point this way.
type ShedStatus struct {
	Stage        int     `json:"stage"`
	StageName    string  `json:"stage_name"`
	Burn         float64 `json:"burn"`
	Degraded     float64 `json:"degraded"`
	Enter        float64 `json:"enter,omitempty"` // threshold to escalate (0 at top stage)
	Exit         float64 `json:"exit,omitempty"`  // threshold to recover (0 at stage 0)
	DwellEpochs  int     `json:"dwell_epochs"`
	Dwell        int     `json:"dwell"`
	SessionsOpen int     `json:"sessions_open"`
}

// ShedStatusFunc reports the current overload-controller snapshot; nil
// means no controller is wired in.
type ShedStatusFunc func() ShedStatus

// HealthFunc reports the current health snapshot; nil means always-OK.
type HealthFunc func() Health

// Server is the opt-in observability HTTP listener. It mounts:
//
//	/metrics          Prometheus text exposition
//	/metrics.json     expvar-style JSON exposition
//	/popularity.json  top-K and quantile-sketch series, full keyed detail
//	/healthz          Health JSON (503 when not OK)
//	/debug/pprof/*    net/http/pprof (profile, heap, trace, ...)
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// ServeOptions configures the observability listener beyond the basic
// registry + health pair.
type ServeOptions struct {
	Registry *Registry
	Health   HealthFunc
	// Recorder, when non-nil, additionally mounts the flight-recorder
	// endpoints: /timeseries.json (windowed raw/delta/rate queries) and
	// /dashboard (live HTML page with SVG sparklines and the SLO table).
	Recorder *Recorder
	// SLOs feeds the dashboard's objective table (nil hides it).
	SLOs *SLOEngine
	// Shed feeds the dashboard's overload-controller panel (nil hides it).
	Shed ShedStatusFunc
	// Runtime, when non-nil, feeds the /healthz runtime line and the
	// dashboard's go-runtime panel from the runtime-metrics bridge.
	Runtime *RuntimeBridge
}

// Serve starts the observability listener on addr (host:port; port 0 picks a
// free one). The registry may be nil, in which case /metrics expositions are
// empty but pprof and /healthz still work — profiling does not require
// metrics.
func Serve(addr string, reg *Registry, health HealthFunc) (*Server, error) {
	return ServeWith(addr, ServeOptions{Registry: reg, Health: health})
}

// ServeWith is Serve with the full option set (flight recorder, SLO engine).
func ServeWith(addr string, opts ServeOptions) (*Server, error) {
	reg, health := opts.Registry, opts.Health
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// A client hanging up mid-scrape surfaces as a write error here;
		// there is nothing useful to do with it.
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		h := Health{OK: true}
		if health != nil {
			h = health()
		}
		if h.Runtime == "" {
			h.Runtime = opts.Runtime.HealthLine()
		}
		w.Header().Set("Content-Type", "application/json")
		if !h.OK {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_ = json.NewEncoder(w).Encode(h)
	})
	if reg != nil {
		mux.HandleFunc("/popularity.json", handlePopularity(reg))
	}
	if opts.Recorder != nil {
		mux.HandleFunc("/timeseries.json", opts.Recorder.handleTimeseries)
		mux.HandleFunc("/dashboard", opts.Recorder.handleDashboard(reg, opts.SLOs, opts.Shed, opts.Runtime))
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{
		ln: ln,
		srv: &http.Server{
			Handler: mux,
			// Scrapes and profiles are short-lived; generous but bounded.
			ReadHeaderTimeout: 10 * time.Second,
		},
	}
	//lint:ignore goroleak process-lifetime by design: Serve blocks until Server.Close severs the listener, which is the goroutine's join — the http.Server owns the shutdown handshake, not a channel in this package
	go func() {
		// ErrServerClosed (and any accept error after Close) is the normal
		// shutdown path for an opt-in debug listener.
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and severs open scrape connections.
func (s *Server) Close() error { return s.srv.Close() }
