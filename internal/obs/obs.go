// Package obs is StarCDN's stdlib-only observability layer: a lock-cheap
// atomic metrics registry with expvar-style JSON and Prometheus text
// expositions, an opt-in HTTP listener that also mounts net/http/pprof and a
// /healthz endpoint, request-path tracing with deterministic seeded sampling
// and a JSONL exporter, and a log/slog-based structured logger with an
// injectable handler.
//
// Every instrument is nil-safe: a nil *Registry hands out nil *Counter /
// *Gauge / *Histogram handles whose methods are no-ops, and a nil *Tracer
// never samples. Disabled observability therefore compiles down to a nil
// check on the hot path, which is what keeps seeded experiment runs
// deterministic and overhead-free when nothing is watching.
//
// Metric naming follows the Prometheus convention
// starcdn_<subsystem>_<metric>[_total|_bytes|_ms]; see DESIGN.md §9 for the
// full series inventory.
package obs
