package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestServeHealthzRuntimeLine: with a runtime bridge configured, /healthz
// carries the compact runtime line alongside the health payload.
func TestServeHealthzRuntimeLine(t *testing.T) {
	reg := NewRegistry()
	s, err := ServeWith("127.0.0.1:0", ServeOptions{
		Registry: reg,
		Health:   func() Health { return Health{OK: true, Live: 1} },
		Runtime:  NewRuntimeBridge(reg),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := s.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	code, body := get(t, "http://"+s.Addr()+"/healthz")
	if code != 200 {
		t.Fatalf("/healthz = %d\n%s", code, body)
	}
	var h Health
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("healthz JSON: %v\n%s", err, body)
	}
	for _, key := range []string{"goroutines=", "heap=", "total=", "gc=", "pause=", "sched_p99="} {
		if !strings.Contains(h.Runtime, key) {
			t.Errorf("runtime line missing %q: %q", key, h.Runtime)
		}
	}

	// Without a bridge the field stays absent, keeping old payloads stable.
	s2, err := Serve("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := s2.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	if _, body := get(t, "http://"+s2.Addr()+"/healthz"); strings.Contains(body, `"runtime"`) {
		t.Errorf("bridge-less /healthz grew a runtime field: %s", body)
	}
}

// TestDashboardRuntimePanel: the go-runtime panel renders live bridge state
// even on a completely fresh recorder (no epochs ticked — every sparkline
// ring is still NaN-padded), and disappears when no bridge is configured.
func TestDashboardRuntimePanel(t *testing.T) {
	reg := NewRegistry()
	rec := NewRecorder(reg, RecorderOptions{EpochSec: 1})
	rt := NewRuntimeBridge(reg)
	req := httptest.NewRequest(http.MethodGet, "/dashboard", nil)
	w := httptest.NewRecorder()
	rec.handleDashboard(reg, nil, nil, rt)(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("fresh-recorder dashboard status = %d", w.Code)
	}
	out := w.Body.String()
	for _, want := range []string{"go runtime", "goroutines", "gc cycles", "sched p99"} {
		if !strings.Contains(out, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}

	// After bridge-fed epochs the starcdn_go_* sparklines render as series.
	rt.BindRecorder(rec)
	rec.TickAt(1)
	rec.TickAt(2)
	w = httptest.NewRecorder()
	rec.handleDashboard(reg, nil, nil, rt)(w, req)
	if !strings.Contains(w.Body.String(), "starcdn_go_goroutines") {
		t.Error("dashboard missing the goroutine sparkline after two epochs")
	}

	// No bridge, no panel.
	w = httptest.NewRecorder()
	rec.handleDashboard(reg, nil, nil, nil)(w, req)
	if strings.Contains(w.Body.String(), "go runtime") {
		t.Error("bridge-less dashboard rendered the runtime panel")
	}
}

// TestTimeseriesPhaseAndRuntimeSeries: /timeseries.json serves the new
// series families — ?match=starcdn_phase_ isolates the phase histograms'
// fan-out, and delta/rate transforms apply to the bridge gauges.
func TestTimeseriesPhaseAndRuntimeSeries(t *testing.T) {
	reg := NewRegistry()
	rec := NewRecorder(reg, RecorderOptions{EpochSec: 1})
	p := NewSimPhases(reg)
	p.BindRecorder(rec)
	rt := NewRuntimeBridge(reg)
	rt.BindRecorder(rec)

	for i := 1; i <= 3; i++ {
		p.accum[PhaseSimCache].Store(int64(i) * 1e9)
		rec.TickAt(float64(i))
	}

	get := func(q string) map[string]any {
		t.Helper()
		req := httptest.NewRequest(http.MethodGet, "/timeseries.json"+q, nil)
		w := httptest.NewRecorder()
		rec.handleTimeseries(w, req)
		if w.Code != http.StatusOK {
			t.Fatalf("%s status = %d\n%s", q, w.Code, w.Body.String())
		}
		var body map[string]any
		if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
			t.Fatalf("%s: bad JSON: %v", q, err)
		}
		return body
	}

	// match=starcdn_phase_ isolates the phase family.
	series := get("?match=starcdn_phase_")["series"].(map[string]any)
	if len(series) == 0 {
		t.Fatal("no phase series matched")
	}
	for key := range series {
		if !strings.Contains(key, "starcdn_phase_") {
			t.Errorf("match leaked non-phase series %q", key)
		}
	}
	sumKey := `starcdn_phase_stage_seconds{pipeline="sim",stage="cache"}_sum`
	sd, ok := series[sumKey].(map[string]any)
	if !ok {
		t.Fatalf("series %q missing; got %d phase series", sumKey, len(series))
	}
	vs := sd["v"].([]any)
	if len(vs) != 3 || vs[2].(float64) != 6 {
		t.Errorf("cache _sum ring = %v, want cumulative [1 3 6]", vs)
	}

	// delta on the cumulative-gauge family differences per epoch.
	series = get("?form=delta&match=starcdn_go_gc_cycles")["series"].(map[string]any)
	gd, ok := series["starcdn_go_gc_cycles"].(map[string]any)
	if !ok {
		t.Fatalf("gc-cycles delta series missing: %v", series)
	}
	if n := len(gd["v"].([]any)); n != 2 {
		t.Errorf("delta over 3 epochs has %d points, want 2", n)
	}

	// rate applies to the same gauges (per-second change).
	series = get("?form=rate&match=starcdn_go_")["series"].(map[string]any)
	if _, ok := series["starcdn_go_goroutines"]; !ok {
		t.Errorf("rate form dropped the goroutine gauge: %v", series)
	}
}
