package obs

import (
	"fmt"
	"html/template"
	"math"
	"net/http"
	"strings"
)

// dashboardMaxCharts caps how many sparklines one page renders; constellation
// runs register hundreds of per-satellite series and a debug page does not
// need them all (use /timeseries.json?match=... for targeted queries).
const dashboardMaxCharts = 64

// dashboardWindowSec is the sparkline lookback.
const dashboardWindowSec = 300.0

// dashboardChart is one series' render state.
type dashboardChart struct {
	Key    string
	Last   string
	Points string // SVG polyline points
	Empty  bool
}

// dashboardTopK is one top-K instrument's table: the ranked entries with
// their refined estimates and trace exemplars.
type dashboardTopK struct {
	Name    string
	N       int64
	Entries []TopKEntry
}

// dashboardQuantileRow is one quantile-sketch instrument's row in the
// latency table.
type dashboardQuantileRow struct {
	Name  string
	Count int64
	P50   string
	P90   string
	P99   string
	Trace string // exemplar trace ID nearest p99 ("" when unsampled)
}

// dashboardData feeds the page template.
type dashboardData struct {
	EpochSec  float64
	Epochs    int64
	NSeries   int
	Truncated bool
	Match     string
	SLOs      []SLOStatus
	Shed      *ShedStatus
	Runtime   *RuntimeStatus
	TopKs     []dashboardTopK
	Quantiles []dashboardQuantileRow
	Charts    []dashboardChart
}

var dashboardTmpl = template.Must(template.New("dashboard").Funcs(template.FuncMap{
	"rank":  func(i int) int { return i + 1 },
	"bytes": fmtBytes,
	"secs":  fmtSeconds,
}).Parse(`<!DOCTYPE html>
<html><head><meta charset="utf-8">
<meta http-equiv="refresh" content="2">
<title>starcdn flight recorder</title>
<style>
body { font-family: monospace; background: #0b0e14; color: #cdd6e3; margin: 1.5em; }
h1 { font-size: 1.2em; } h2 { font-size: 1em; margin-top: 1.5em; }
table { border-collapse: collapse; }
td, th { padding: 2px 10px; border-bottom: 1px solid #223; text-align: left; }
.breach { color: #ff5566; font-weight: bold; }
.ok { color: #5fd787; }
.grid { display: flex; flex-wrap: wrap; gap: 12px; }
.card { border: 1px solid #223; padding: 6px 8px; }
.card .k { font-size: 0.85em; color: #8899aa; }
svg polyline { fill: none; stroke: #5fb3ff; stroke-width: 1.5; }
</style></head><body>
<h1>starcdn flight recorder</h1>
<p>{{.Epochs}} epochs · {{.EpochSec}}s/epoch · {{.NSeries}} series
{{- if .Match}} · match={{.Match}}{{end}} · auto-refresh 2s ·
<a href="/metrics">/metrics</a> <a href="/timeseries.json">/timeseries.json</a>
<a href="/healthz">/healthz</a></p>
{{if .SLOs}}<h2>SLOs</h2>
<table><tr><th>slo</th><th>objective</th><th>value</th><th>burn rate</th><th>budget left</th><th>state</th></tr>
{{range .SLOs}}<tr><td>{{.Name}}</td><td>{{.Objective}}</td><td>{{printf "%.4g" .Value}}</td>
<td>{{printf "%.3g" .BurnRate}}</td><td>{{printf "%.3g" .Budget}}</td>
<td class="{{if .Breach}}breach{{else}}ok{{end}}">{{if .Breach}}BREACH{{else}}ok{{end}}</td></tr>
{{end}}</table>{{end}}
{{with .Shed}}<h2>overload control</h2>
<table><tr><th>stage</th><th>burn rate</th><th>degraded</th><th>enter ≥</th><th>exit &lt;</th><th>dwell</th><th>sessions</th></tr>
<tr><td class="{{if .Stage}}breach{{else}}ok{{end}}">{{.StageName}}</td>
<td>{{printf "%.3g" .Burn}}</td><td>{{printf "%.3g" .Degraded}}</td>
<td>{{if .Enter}}{{printf "%.3g" .Enter}}{{else}}–{{end}}</td>
<td>{{if .Exit}}{{printf "%.3g" .Exit}}{{else}}–{{end}}</td>
<td>{{.Dwell}}/{{.DwellEpochs}}</td><td>{{.SessionsOpen}}</td></tr>
</table>{{end}}
{{with .Runtime}}<h2>go runtime</h2>
<table><tr><th>goroutines</th><th>heap</th><th>total</th><th>gc cycles</th><th>last pause</th><th>sched p99</th></tr>
<tr><td>{{.Goroutines}}</td><td>{{bytes .HeapBytes}}</td><td>{{bytes .TotalBytes}}</td>
<td>{{.GCCycles}}</td><td>{{secs .LastGCPauseSec}}</td><td>{{secs .SchedP99Sec}}</td></tr>
</table>{{end}}
{{if .TopKs}}<h2>popularity (top-K) · <a href="/popularity.json">/popularity.json</a></h2>
{{range .TopKs}}<h3 style="font-size:0.9em">{{.Name}} · n={{.N}}</h3>
<table><tr><th>#</th><th>key</th><th>count</th><th>±err</th><th>refined</th><th>exemplar trace</th></tr>
{{range $i, $e := .Entries}}<tr><td>{{rank $i}}</td><td>{{$e.Key}}</td><td>{{$e.Count}}</td>
<td>{{$e.Err}}</td><td>{{$e.Refined}}</td>
<td>{{if $e.Exemplar.TraceID}}<code title="starcdn-trace -assemble {{$e.Exemplar.TraceID}}">{{$e.Exemplar.TraceID}}</code>{{else}}–{{end}}</td></tr>
{{end}}</table>
{{end}}{{end}}
{{if .Quantiles}}<h2>latency sketches</h2>
<table><tr><th>series</th><th>samples</th><th>p50</th><th>p90</th><th>p99</th><th>p99 exemplar</th></tr>
{{range .Quantiles}}<tr><td>{{.Name}}</td><td>{{.Count}}</td><td>{{.P50}}</td><td>{{.P90}}</td><td>{{.P99}}</td>
<td>{{if .Trace}}<code title="starcdn-trace -assemble {{.Trace}}">{{.Trace}}</code>{{else}}–{{end}}</td></tr>
{{end}}</table>{{end}}
<h2>series{{if .Truncated}} (first {{len .Charts}}){{end}}</h2>
<div class="grid">
{{range .Charts}}<div class="card"><div class="k">{{.Key}} = {{.Last}}</div>
{{if .Empty}}<div class="k">(no data)</div>{{else}}<svg width="220" height="48" viewBox="0 0 220 48"><polyline points="{{.Points}}"/></svg>{{end}}
</div>
{{end}}</div>
</body></html>
`))

// dashboardMaxTopKs caps how many top-K tables the page renders (each is
// itself bounded at promTopKRanks rows).
const dashboardMaxTopKs = 6

// handleDashboard renders the live flight-recorder page: SLO table, the
// overload-controller panel when a shed status source is wired in, the
// go-runtime panel when a runtime bridge is wired in, the popularity top-K
// tables and quantile-sketch rows when the registry holds sketch
// instruments, plus one inline-SVG sparkline per recorded series (sorted;
// ?match= filters by substring). Everything is stdlib — html/template and
// hand-rolled SVG.
func (r *Recorder) handleDashboard(reg *Registry, slos *SLOEngine, shed ShedStatusFunc, rt *RuntimeBridge) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		match := req.URL.Query().Get("match")
		keys := r.Series()
		data := dashboardData{
			EpochSec: r.EpochSec(),
			Epochs:   r.Epochs(),
			Match:    match,
			SLOs:     slos.Snapshot(),
		}
		if shed != nil {
			st := shed()
			data.Shed = &st
		}
		if rt != nil {
			st := rt.Sample()
			data.Runtime = &st
		}
		for _, s := range reg.Snapshot() {
			switch s.Kind {
			case "topk":
				if len(data.TopKs) >= dashboardMaxTopKs {
					break
				}
				entries := s.TopK
				if len(entries) > promTopKRanks {
					entries = entries[:promTopKRanks]
				}
				data.TopKs = append(data.TopKs, dashboardTopK{
					Name: s.Name + s.LabelString(), N: s.TopKN, Entries: entries,
				})
			case "sketch":
				row := dashboardQuantileRow{
					Name: s.Name + s.LabelString(), Count: s.SketchCount,
					P50: "–", P90: "–", P99: "–",
				}
				if len(s.SketchQ) == 3 && !math.IsNaN(s.SketchQ[0]) {
					row.P50 = formatFloat(s.SketchQ[0])
					row.P90 = formatFloat(s.SketchQ[1])
					row.P99 = formatFloat(s.SketchQ[2])
				}
				if len(s.SketchExemplars) == 3 && s.SketchExemplars[2].Valid() {
					row.Trace = s.SketchExemplars[2].TraceID
				}
				data.Quantiles = append(data.Quantiles, row)
			}
		}
		for _, key := range keys {
			if match != "" && !strings.Contains(key, match) {
				continue
			}
			data.NSeries++
			if len(data.Charts) >= dashboardMaxCharts {
				data.Truncated = true
				continue
			}
			data.Charts = append(data.Charts, sparkline(key, r.Window(key, dashboardWindowSec)))
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		// A client hanging up mid-render is not actionable.
		_ = dashboardTmpl.Execute(w, data)
	}
}

// sparkline lays a series' window out as SVG polyline points in a 220x48 box
// (4px padding), scaling value range to height and time range to width.
func sparkline(key string, pts []Point) dashboardChart {
	const w, h, pad = 220.0, 48.0, 4.0
	ch := dashboardChart{Key: key, Last: "–", Empty: true}
	var xs, ys []float64
	for _, p := range pts {
		if math.IsNaN(p.V) || math.IsInf(p.V, 0) {
			continue
		}
		xs = append(xs, p.T)
		ys = append(ys, p.V)
	}
	if len(ys) == 0 {
		return ch
	}
	ch.Empty = false
	ch.Last = formatFloat(ys[len(ys)-1])
	if len(ys) == 1 {
		// A one-coordinate polyline renders nothing; draw a short visible
		// dash at the sample's position instead (a fresh recorder with a
		// single sealed epoch must still show its one data point).
		y := h / 2
		ch.Points = fmt.Sprintf("%.1f,%.1f %.1f,%.1f", w/2-6, y, w/2+6, y)
		return ch
	}
	tMin, tMax := xs[0], xs[len(xs)-1]
	vMin, vMax := ys[0], ys[0]
	for _, v := range ys {
		vMin = math.Min(vMin, v)
		vMax = math.Max(vMax, v)
	}
	var b strings.Builder
	for i := range xs {
		x := w / 2
		if tMax > tMin {
			x = pad + (xs[i]-tMin)/(tMax-tMin)*(w-2*pad)
		}
		y := h / 2
		if vMax > vMin {
			y = h - pad - (ys[i]-vMin)/(vMax-vMin)*(h-2*pad)
		}
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%.1f,%.1f", x, y)
	}
	ch.Points = b.String()
	return ch
}
