package obs

import (
	"fmt"
	"html/template"
	"math"
	"net/http"
	"strings"
)

// dashboardMaxCharts caps how many sparklines one page renders; constellation
// runs register hundreds of per-satellite series and a debug page does not
// need them all (use /timeseries.json?match=... for targeted queries).
const dashboardMaxCharts = 64

// dashboardWindowSec is the sparkline lookback.
const dashboardWindowSec = 300.0

// dashboardChart is one series' render state.
type dashboardChart struct {
	Key    string
	Last   string
	Points string // SVG polyline points
	Empty  bool
}

// dashboardData feeds the page template.
type dashboardData struct {
	EpochSec  float64
	Epochs    int64
	NSeries   int
	Truncated bool
	Match     string
	SLOs      []SLOStatus
	Shed      *ShedStatus
	Charts    []dashboardChart
}

var dashboardTmpl = template.Must(template.New("dashboard").Parse(`<!DOCTYPE html>
<html><head><meta charset="utf-8">
<meta http-equiv="refresh" content="2">
<title>starcdn flight recorder</title>
<style>
body { font-family: monospace; background: #0b0e14; color: #cdd6e3; margin: 1.5em; }
h1 { font-size: 1.2em; } h2 { font-size: 1em; margin-top: 1.5em; }
table { border-collapse: collapse; }
td, th { padding: 2px 10px; border-bottom: 1px solid #223; text-align: left; }
.breach { color: #ff5566; font-weight: bold; }
.ok { color: #5fd787; }
.grid { display: flex; flex-wrap: wrap; gap: 12px; }
.card { border: 1px solid #223; padding: 6px 8px; }
.card .k { font-size: 0.85em; color: #8899aa; }
svg polyline { fill: none; stroke: #5fb3ff; stroke-width: 1.5; }
</style></head><body>
<h1>starcdn flight recorder</h1>
<p>{{.Epochs}} epochs · {{.EpochSec}}s/epoch · {{.NSeries}} series
{{- if .Match}} · match={{.Match}}{{end}} · auto-refresh 2s ·
<a href="/metrics">/metrics</a> <a href="/timeseries.json">/timeseries.json</a>
<a href="/healthz">/healthz</a></p>
{{if .SLOs}}<h2>SLOs</h2>
<table><tr><th>slo</th><th>objective</th><th>value</th><th>burn rate</th><th>budget left</th><th>state</th></tr>
{{range .SLOs}}<tr><td>{{.Name}}</td><td>{{.Objective}}</td><td>{{printf "%.4g" .Value}}</td>
<td>{{printf "%.3g" .BurnRate}}</td><td>{{printf "%.3g" .Budget}}</td>
<td class="{{if .Breach}}breach{{else}}ok{{end}}">{{if .Breach}}BREACH{{else}}ok{{end}}</td></tr>
{{end}}</table>{{end}}
{{with .Shed}}<h2>overload control</h2>
<table><tr><th>stage</th><th>burn rate</th><th>degraded</th><th>enter ≥</th><th>exit &lt;</th><th>dwell</th><th>sessions</th></tr>
<tr><td class="{{if .Stage}}breach{{else}}ok{{end}}">{{.StageName}}</td>
<td>{{printf "%.3g" .Burn}}</td><td>{{printf "%.3g" .Degraded}}</td>
<td>{{if .Enter}}{{printf "%.3g" .Enter}}{{else}}–{{end}}</td>
<td>{{if .Exit}}{{printf "%.3g" .Exit}}{{else}}–{{end}}</td>
<td>{{.Dwell}}/{{.DwellEpochs}}</td><td>{{.SessionsOpen}}</td></tr>
</table>{{end}}
<h2>series{{if .Truncated}} (first {{len .Charts}}){{end}}</h2>
<div class="grid">
{{range .Charts}}<div class="card"><div class="k">{{.Key}} = {{.Last}}</div>
{{if .Empty}}<div class="k">(no data)</div>{{else}}<svg width="220" height="48" viewBox="0 0 220 48"><polyline points="{{.Points}}"/></svg>{{end}}
</div>
{{end}}</div>
</body></html>
`))

// handleDashboard renders the live flight-recorder page: SLO table, the
// overload-controller panel when a shed status source is wired in, plus one
// inline-SVG sparkline per recorded series (sorted; ?match= filters by
// substring). Everything is stdlib — html/template and hand-rolled SVG.
func (r *Recorder) handleDashboard(slos *SLOEngine, shed ShedStatusFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		match := req.URL.Query().Get("match")
		keys := r.Series()
		data := dashboardData{
			EpochSec: r.EpochSec(),
			Epochs:   r.Epochs(),
			Match:    match,
			SLOs:     slos.Snapshot(),
		}
		if shed != nil {
			st := shed()
			data.Shed = &st
		}
		for _, key := range keys {
			if match != "" && !strings.Contains(key, match) {
				continue
			}
			data.NSeries++
			if len(data.Charts) >= dashboardMaxCharts {
				data.Truncated = true
				continue
			}
			data.Charts = append(data.Charts, sparkline(key, r.Window(key, dashboardWindowSec)))
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		// A client hanging up mid-render is not actionable.
		_ = dashboardTmpl.Execute(w, data)
	}
}

// sparkline lays a series' window out as SVG polyline points in a 220x48 box
// (4px padding), scaling value range to height and time range to width.
func sparkline(key string, pts []Point) dashboardChart {
	const w, h, pad = 220.0, 48.0, 4.0
	ch := dashboardChart{Key: key, Last: "–", Empty: true}
	var xs, ys []float64
	for _, p := range pts {
		if math.IsNaN(p.V) || math.IsInf(p.V, 0) {
			continue
		}
		xs = append(xs, p.T)
		ys = append(ys, p.V)
	}
	if len(ys) == 0 {
		return ch
	}
	ch.Empty = false
	ch.Last = formatFloat(ys[len(ys)-1])
	tMin, tMax := xs[0], xs[len(xs)-1]
	vMin, vMax := ys[0], ys[0]
	for _, v := range ys {
		vMin = math.Min(vMin, v)
		vMax = math.Max(vMax, v)
	}
	var b strings.Builder
	for i := range xs {
		x := w / 2
		if tMax > tMin {
			x = pad + (xs[i]-tMin)/(tMax-tMin)*(w-2*pad)
		}
		y := h / 2
		if vMax > vMin {
			y = h - pad - (ys[i]-vMin)/(vMax-vMin)*(h-2*pad)
		}
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%.1f,%.1f", x, y)
	}
	ch.Points = b.String()
	return ch
}
