package obs

import (
	"math"
	"runtime"
	"runtime/metrics"
	"strings"
	"testing"
)

// mkRuntimeHist builds a cumulative runtime/metrics histogram fixture:
// len(buckets) = len(counts)+1, Buckets are bounds.
func mkRuntimeHist(buckets []float64, counts []uint64) *metrics.Float64Histogram {
	return &metrics.Float64Histogram{Counts: counts, Buckets: buckets}
}

// TestRuntimeBridgeSample: a sample fills the status struct with live
// runtime figures and mirrors them into the starcdn_go_* gauges.
func TestRuntimeBridgeSample(t *testing.T) {
	reg := NewRegistry()
	b := NewRuntimeBridge(reg)
	runtime.GC() // guarantee at least one GC cycle and pause sample
	st := b.Sample()
	if st.Goroutines < 1 {
		t.Errorf("goroutines = %d, want >= 1", st.Goroutines)
	}
	if st.HeapBytes == 0 || st.TotalBytes == 0 {
		t.Errorf("memory sample empty: heap=%d total=%d", st.HeapBytes, st.TotalBytes)
	}
	if st.GCCycles == 0 {
		t.Errorf("gc cycles = 0 after an explicit runtime.GC()")
	}
	if st.LastGCPauseSec <= 0 {
		t.Errorf("last GC pause = %v, want > 0 after runtime.GC()", st.LastGCPauseSec)
	}
	if got := reg.Gauge("starcdn_go_goroutines").Value(); got != float64(st.Goroutines) {
		t.Errorf("goroutines gauge = %v, status = %d", got, st.Goroutines)
	}
	if got := reg.Gauge("starcdn_go_heap_objects_bytes").Value(); got == 0 {
		t.Error("heap gauge not set")
	}
	if got := reg.Gauge("starcdn_go_gc_cycles").Value(); got != float64(st.GCCycles) {
		t.Errorf("gc cycles gauge = %v, status = %d", got, st.GCCycles)
	}
	// Status returns the cached sample without re-reading.
	if b.Status() != st {
		t.Error("Status does not match the last Sample")
	}
}

// TestRuntimeBridgeHealthLine: the /healthz line carries every field in its
// compact key=value form.
func TestRuntimeBridgeHealthLine(t *testing.T) {
	b := NewRuntimeBridge(nil) // nil registry: sampling without exposition
	line := b.HealthLine()
	for _, key := range []string{"goroutines=", "heap=", "total=", "gc=", "pause=", "sched_p99="} {
		if !strings.Contains(line, key) {
			t.Errorf("health line missing %q: %q", key, line)
		}
	}
}

// TestRuntimeBridgeNil: the nil bridge no-ops everywhere.
func TestRuntimeBridgeNil(t *testing.T) {
	var b *RuntimeBridge
	if b.Sample() != (RuntimeStatus{}) || b.Status() != (RuntimeStatus{}) {
		t.Error("nil bridge returned a non-zero sample")
	}
	if b.HealthLine() != "" {
		t.Error("nil bridge rendered a health line")
	}
	b.BindRecorder(nil)
}

// TestRuntimeBridgeBindRecorder: a bound bridge samples pre-snapshot, so the
// epoch's ring slot carries that epoch's runtime state; gauges being plain
// series, delta/rate transforms in /timeseries.json apply to them.
func TestRuntimeBridgeBindRecorder(t *testing.T) {
	reg := NewRegistry()
	rec := NewRecorder(reg, RecorderOptions{EpochSec: 1})
	b := NewRuntimeBridge(reg)
	b.BindRecorder(rec)
	rec.TickAt(1)
	pts := rec.Window("starcdn_go_goroutines", 0)
	if len(pts) != 1 || pts[0].V < 1 {
		t.Fatalf("goroutine series after one epoch = %v, want one point >= 1", pts)
	}
	rec.TickAt(2)
	if pts = rec.Window("starcdn_go_goroutines", 0); len(pts) != 2 {
		t.Fatalf("goroutine series after two epochs = %v", pts)
	}
}

// TestNewestBucketUpper pins the pause-delta convention: highest bucket with
// fresh counts wins; +Inf upper bounds fall back to the lower bound; no new
// counts means no pause.
func TestNewestBucketUpper(t *testing.T) {
	h := mkRuntimeHist([]float64{0.001, 0.01, 0.1}, []uint64{3, 1})
	if p, ok := newestBucketUpper(h, nil); !ok || p != 0.1 {
		t.Errorf("fresh histogram: %v,%v, want 0.1,true", p, ok)
	}
	prev := mkRuntimeHist([]float64{0.001, 0.01, 0.1}, []uint64{3, 1})
	if _, ok := newestBucketUpper(h, prev); ok {
		t.Error("unchanged histogram reported a new pause")
	}
	next := mkRuntimeHist([]float64{0.001, 0.01, 0.1}, []uint64{4, 1})
	if p, ok := newestBucketUpper(next, prev); !ok || p != 0.01 {
		t.Errorf("delta in the low bucket: %v,%v, want 0.01,true", p, ok)
	}
	inf := mkRuntimeHist([]float64{0.001, 0.01, math.Inf(1)}, []uint64{0, 2})
	if p, ok := newestBucketUpper(inf, nil); !ok || p != 0.01 {
		t.Errorf("+Inf-capped bucket: %v,%v, want lower bound 0.01,true", p, ok)
	}
}

// TestHistQuantileUpper pins the p99 approximation on a known distribution.
func TestHistQuantileUpper(t *testing.T) {
	h := mkRuntimeHist([]float64{0.001, 0.01, 0.1, 1}, []uint64{98, 1, 1})
	if got := histQuantileUpper(h, 0.99); got != 1 {
		t.Errorf("p99 = %v, want 1 (the top bucket's upper bound)", got)
	}
	if got := histQuantileUpper(h, 0.5); got != 0.01 {
		t.Errorf("p50 = %v, want 0.01", got)
	}
	if got := histQuantileUpper(mkRuntimeHist([]float64{1, 2}, []uint64{0}), 0.99); got != 0 {
		t.Errorf("empty histogram p99 = %v, want 0", got)
	}
}

func TestFmtBytesAndSeconds(t *testing.T) {
	cases := map[uint64]string{
		512:             "512B",
		2 * 1024:        "2.0KiB",
		3 * 1024 * 1024: "3.0MiB",
	}
	for in, want := range cases {
		if got := fmtBytes(in); got != want {
			t.Errorf("fmtBytes(%d) = %q, want %q", in, got, want)
		}
	}
	if got := fmtSeconds(0.000128); got != "128µs" {
		t.Errorf("fmtSeconds(128µs) = %q", got)
	}
	if got := fmtSeconds(1.5); got != "1.5s" {
		t.Errorf("fmtSeconds(1.5s) = %q", got)
	}
}
