package obs

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestRecorderTickAt checks the sim-time driver: snapshots land on epoch
// boundaries, at most one per call, and quiet stretches skip epochs.
func TestRecorderTickAt(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("starcdn_test_events_total")
	rec := NewRecorder(reg, RecorderOptions{EpochSec: 10})

	c.Inc()
	rec.TickAt(3) // before the first boundary: no snapshot
	if got := rec.Epochs(); got != 0 {
		t.Fatalf("Epochs before first boundary = %d, want 0", got)
	}
	rec.TickAt(12) // crosses t=10
	c.Add(4)
	rec.TickAt(12.5) // same epoch: no snapshot
	rec.TickAt(47)   // crosses t=40 (epochs 20 and 30 were quiet: skipped)
	if got := rec.Epochs(); got != 2 {
		t.Fatalf("Epochs = %d, want 2", got)
	}

	pts := rec.Window("starcdn_test_events_total", 0)
	if len(pts) != 2 {
		t.Fatalf("Window returned %d points, want 2: %v", len(pts), pts)
	}
	// Timestamps are boundary-stamped, not call-stamped.
	if pts[0].T != 10 || pts[1].T != 40 {
		t.Errorf("epoch times = %v, %v; want 10, 40", pts[0].T, pts[1].T)
	}
	if pts[0].V != 1 || pts[1].V != 5 {
		t.Errorf("values = %v, %v; want 1, 5", pts[0].V, pts[1].V)
	}
}

// TestRecorderSeal checks the end-of-run flush snapshots off-boundary.
func TestRecorderSeal(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("starcdn_test_events_total")
	rec := NewRecorder(reg, RecorderOptions{EpochSec: 10})
	c.Add(7)
	rec.Seal(13.7)
	pts := rec.Window("starcdn_test_events_total", 0)
	if len(pts) != 1 || pts[0].T != 13.7 || pts[0].V != 7 {
		t.Fatalf("after Seal(13.7): %v, want [{13.7 7}]", pts)
	}
	// Sealing advances the boundary: a tick inside the sealed epoch is a no-op.
	rec.TickAt(14)
	if got := rec.Epochs(); got != 1 {
		t.Errorf("tick inside sealed epoch took a snapshot (epochs=%d)", got)
	}
}

// TestRecorderRingWrap fills the ring past capacity and checks only the
// newest epochs survive, in order.
func TestRecorderRingWrap(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("starcdn_test_value")
	rec := NewRecorder(reg, RecorderOptions{EpochSec: 1, Capacity: 4})
	for i := 1; i <= 10; i++ {
		g.Set(float64(i))
		rec.TickAt(float64(i))
	}
	pts := rec.Window("starcdn_test_value", 0)
	if len(pts) != 4 {
		t.Fatalf("window after wrap holds %d points, want 4", len(pts))
	}
	for i, p := range pts {
		want := float64(7 + i)
		if p.T != want || p.V != want {
			t.Errorf("pts[%d] = %+v, want T=V=%v", i, p, want)
		}
	}
}

// TestRecorderLateSeries checks a series born mid-flight is NaN-backfilled
// for the epochs before its first appearance.
func TestRecorderLateSeries(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("starcdn_test_early_total").Inc()
	rec := NewRecorder(reg, RecorderOptions{EpochSec: 1})
	rec.TickAt(1)
	reg.Counter("starcdn_test_late_total").Inc()
	rec.TickAt(2)
	pts := rec.Window("starcdn_test_late_total", 0)
	if len(pts) != 2 {
		t.Fatalf("late series has %d points, want 2", len(pts))
	}
	if !math.IsNaN(pts[0].V) {
		t.Errorf("pre-birth epoch = %v, want NaN", pts[0].V)
	}
	if pts[1].V != 1 {
		t.Errorf("post-birth epoch = %v, want 1", pts[1].V)
	}
}

// TestRecorderWindowAndDelta checks window clipping and cumulative deltas.
func TestRecorderWindowAndDelta(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("starcdn_test_events_total")
	rec := NewRecorder(reg, RecorderOptions{EpochSec: 1})
	for i := 1; i <= 5; i++ {
		c.Add(10)
		rec.TickAt(float64(i))
	}
	// Window of 2s from latest (t=5): strictly after t=3, so epochs 4 and 5.
	pts := rec.Window("starcdn_test_events_total", 2)
	if len(pts) != 2 || pts[0].T != 4 || pts[1].T != 5 {
		t.Fatalf("2s window = %v, want epochs 4 and 5", pts)
	}
	// Increments inside (3,5]: epochs 4 and 5 added 10 each, and the
	// baseline is the last pre-window sample (t=3, value 30).
	d, ok := rec.Delta("starcdn_test_events_total", 2)
	if !ok || d != 20 {
		t.Errorf("Delta over 2s = %v,%v; want 20,true", d, ok)
	}
	// Full-history delta: the series was born inside retention, so its whole
	// value counts (baseline 0).
	d, ok = rec.Delta("starcdn_test_events_total", 0)
	if !ok || d != 50 {
		t.Errorf("Delta over all = %v,%v; want 50,true", d, ok)
	}
	if _, ok := rec.Delta("starcdn_test_missing_total", 0); ok {
		t.Error("Delta on unknown series reported ok")
	}
	// Single-sample delta is the sample itself (series born inside window).
	reg2 := NewRegistry()
	c2 := reg2.Counter("starcdn_test_one_total")
	rec2 := NewRecorder(reg2, RecorderOptions{EpochSec: 1})
	c2.Add(3)
	rec2.TickAt(1)
	if d, ok := rec2.Delta("starcdn_test_one_total", 60); !ok || d != 3 {
		t.Errorf("single-sample Delta = %v,%v; want 3,true", d, ok)
	}
}

// TestRecorderHistogramWindow checks histogram fan-out: bucket series are
// recorded per epoch and HistogramWindow de-cumulates them into per-bucket
// counts restricted to the window.
func TestRecorderHistogramWindow(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("starcdn_test_latency_ms", []float64{1, 10, 100})
	rec := NewRecorder(reg, RecorderOptions{EpochSec: 1})

	h.Observe(0.5) // bucket le=1
	h.Observe(5)   // bucket le=10
	rec.TickAt(1)
	h.Observe(50)  // bucket le=100
	h.Observe(500) // +Inf
	rec.TickAt(2)

	bounds, counts, ok := rec.HistogramWindow("starcdn_test_latency_ms", 0)
	if !ok {
		t.Fatal("HistogramWindow not ok")
	}
	if len(bounds) != 3 || len(counts) != 4 {
		t.Fatalf("bounds=%v counts=%v, want 3 bounds and 4 buckets", bounds, counts)
	}
	want := []int64{1, 1, 1, 1}
	for i, c := range counts {
		if c != want[i] {
			t.Errorf("counts[%d] = %d, want %d (all %v)", i, c, want[i], counts)
		}
	}
	// A 1s window sees only epoch 2's samples: just the tail buckets.
	_, counts, ok = rec.HistogramWindow("starcdn_test_latency_ms", 1)
	if !ok {
		t.Fatal("1s HistogramWindow not ok")
	}
	if counts[0] != 0 || counts[1] != 0 || counts[2] != 1 || counts[3] != 1 {
		t.Errorf("1s window counts = %v, want [0 0 1 1]", counts)
	}
	if _, _, ok := rec.HistogramWindow("starcdn_test_missing", 0); ok {
		t.Error("HistogramWindow on unknown key reported ok")
	}
}

// TestRecorderLabelledHistogram checks the key round trip through
// splitSeriesKey for histograms carrying labels.
func TestRecorderLabelledHistogram(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("starcdn_test_latency_ms", []float64{1, 10}, L("op", "get"))
	rec := NewRecorder(reg, RecorderOptions{EpochSec: 1})
	h.Observe(5)
	rec.TickAt(1)
	key := `starcdn_test_latency_ms{op="get"}`
	_, counts, ok := rec.HistogramWindow(key, 0)
	if !ok {
		t.Fatalf("HistogramWindow(%q) not ok; series = %v", key, rec.Series())
	}
	if counts[0] != 0 || counts[1] != 1 {
		t.Errorf("counts = %v, want [0 1 0]", counts)
	}
}

// TestHistQuantile exercises the interpolation convention and edge cases.
func TestHistQuantile(t *testing.T) {
	bounds := []float64{1, 10, 100}
	cases := []struct {
		name   string
		counts []int64
		q      float64
		want   float64
	}{
		{"median interpolates", []int64{10, 10, 0, 0}, 0.5, 1},
		{"p75 inside second bucket", []int64{10, 10, 0, 0}, 0.75, 5.5},
		{"q=1 hits bucket top", []int64{10, 10, 0, 0}, 1, 10},
		{"q=0 hits bucket bottom", []int64{0, 10, 0, 0}, 0, 1},
		{"+Inf answers highest finite bound", []int64{0, 0, 0, 5}, 0.99, 100},
		{"single sample q=0.5", []int64{0, 1, 0, 0}, 0.5, 5.5},
		{"clamped q>1", []int64{10, 0, 0, 0}, 2, 1},
		{"clamped q<0", []int64{10, 0, 0, 0}, -1, 0},
	}
	for _, tc := range cases {
		got := HistQuantile(bounds, tc.counts, tc.q)
		if math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("%s: HistQuantile(q=%v) = %v, want %v", tc.name, tc.q, got, tc.want)
		}
	}
	if got := HistQuantile(bounds, []int64{0, 0, 0, 0}, 0.5); !math.IsNaN(got) {
		t.Errorf("zero samples: got %v, want NaN", got)
	}
	if got := HistQuantile(nil, []int64{5}, 0.5); !math.IsNaN(got) {
		t.Errorf("no bounds: got %v, want NaN", got)
	}
}

// TestRecorderNilSafe checks every method no-ops on a nil recorder.
func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.TickAt(1)
	r.Seal(2)
	r.OnEpoch(func(float64) {})
	stop := r.StartWall()
	stop()
	if r.EpochSec() != 0 || r.Epochs() != 0 || r.Series() != nil {
		t.Error("nil recorder reported non-zero state")
	}
	if pts := r.Window("x", 0); pts != nil {
		t.Errorf("nil Window = %v", pts)
	}
	if _, ok := r.Last("x"); ok {
		t.Error("nil Last ok")
	}
	if _, ok := r.Delta("x", 0); ok {
		t.Error("nil Delta ok")
	}
	if _, _, ok := r.HistogramWindow("x", 0); ok {
		t.Error("nil HistogramWindow ok")
	}
}

// TestTimeseriesHandler checks /timeseries.json forms and parameter errors.
func TestTimeseriesHandler(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("starcdn_test_events_total")
	rec := NewRecorder(reg, RecorderOptions{EpochSec: 1})
	for i := 1; i <= 4; i++ {
		c.Add(int64(i)) // cumulative: 1, 3, 6, 10
		rec.TickAt(float64(i))
	}

	get := func(q string) (*httptest.ResponseRecorder, map[string]any) {
		t.Helper()
		req := httptest.NewRequest(http.MethodGet, "/timeseries.json"+q, nil)
		w := httptest.NewRecorder()
		rec.handleTimeseries(w, req)
		var body map[string]any
		if w.Code == http.StatusOK {
			if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
				t.Fatalf("%s: bad JSON: %v\n%s", q, err, w.Body.String())
			}
		}
		return w, body
	}

	w, body := get("")
	if w.Code != http.StatusOK {
		t.Fatalf("raw form status = %d", w.Code)
	}
	if body["epoch_sec"].(float64) != 1 || body["epochs"].(float64) != 4 {
		t.Errorf("header = %v", body)
	}
	series := body["series"].(map[string]any)
	if _, ok := series["starcdn_test_events_total"]; !ok {
		t.Fatalf("series missing counter: %v", series)
	}

	// delta form drops the first point and differences the rest.
	_, body = get("?form=delta&match=events")
	sd := body["series"].(map[string]any)["starcdn_test_events_total"].(map[string]any)
	vs := sd["v"].([]any)
	if len(vs) != 3 || vs[0].(float64) != 2 || vs[2].(float64) != 4 {
		t.Errorf("delta values = %v, want [2 3 4]", vs)
	}

	// rate form divides by dt (epoch 1s, so same values here).
	_, body = get("?form=rate&match=events")
	sr := body["series"].(map[string]any)["starcdn_test_events_total"].(map[string]any)
	vr := sr["v"].([]any)
	if len(vr) != 3 || vr[1].(float64) != 3 {
		t.Errorf("rate values = %v, want [2 3 4]", vr)
	}

	// match filters series out.
	_, body = get("?match=no_such_series")
	if n := len(body["series"].(map[string]any)); n != 0 {
		t.Errorf("match filter left %d series", n)
	}

	// Parameter errors are 400s.
	for _, q := range []string{"?form=wat", "?window=abc"} {
		if w, _ := get(q); w.Code != http.StatusBadRequest {
			t.Errorf("%s status = %d, want 400", q, w.Code)
		}
	}
}

// TestDashboardHandler checks /dashboard renders sparklines and SLO rows.
func TestDashboardHandler(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("starcdn_test_latency_ms", []float64{1, 10, 100})
	rec := NewRecorder(reg, RecorderOptions{EpochSec: 1})
	eng, err := NewSLOEngine(rec, reg, []SLO{{
		Name: "lat-p99", Series: "starcdn_test_latency_ms",
		Quantile: 0.99, MaxValue: 50, WindowSec: 10,
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		h.Observe(5)
		rec.TickAt(float64(i))
	}
	req := httptest.NewRequest(http.MethodGet, "/dashboard", nil)
	w := httptest.NewRecorder()
	shedFn := func() ShedStatus {
		return ShedStatus{Stage: 2, StageName: "stage-2", Burn: 2.5, Enter: 4, Exit: 1, DwellEpochs: 2, Dwell: 1}
	}
	rec.handleDashboard(reg, eng, shedFn, nil)(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("dashboard status = %d", w.Code)
	}
	out := w.Body.String()
	for _, want := range []string{"<svg", "starcdn_test_latency_ms", "lat-p99", "polyline", "overload control", "stage-2"} {
		if !strings.Contains(out, want) {
			t.Errorf("dashboard output missing %q", want)
		}
	}
}

// TestServeWithMountsRecorder checks the HTTP server exposes the recorder
// endpoints when (and only when) a recorder is configured.
func TestServeWithMountsRecorder(t *testing.T) {
	reg := NewRegistry()
	rec := NewRecorder(reg, RecorderOptions{EpochSec: 1})
	reg.Counter("starcdn_test_events_total").Inc()
	rec.TickAt(1)
	srv, err := ServeWith("127.0.0.1:0", ServeOptions{Registry: reg, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, path := range []string{"/timeseries.json", "/dashboard", "/metrics"} {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s status = %d, want 200", path, resp.StatusCode)
		}
	}

	// Without a recorder the endpoints are absent.
	bare, err := ServeWith("127.0.0.1:0", ServeOptions{Registry: NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	resp, err := http.Get("http://" + bare.Addr() + "/timeseries.json")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("recorderless /timeseries.json status = %d, want 404", resp.StatusCode)
	}
}
