package obs

import (
	"math"
	"strings"
	"testing"
)

// TestSLOValidate rejects malformed objectives.
func TestSLOValidate(t *testing.T) {
	bad := []SLO{
		{},                     // no name
		{Name: "x"},            // no objective
		{Name: "x", Good: "g"}, // Good without Total
		{Name: "x", Good: "g", Total: "t", MinRatio: 2},                // ratio out of range
		{Name: "x", Series: "s", Quantile: 0},                          // quantile out of range
		{Name: "x", Series: "s", Quantile: 1.5},                        // quantile out of range
		{Name: "x", Series: "s", Quantile: 0.5, Good: "g", Total: "t"}, // mixed forms
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad[%d] %+v validated", i, s)
		}
	}
	good := []SLO{
		{Name: "ratio", Good: "g", Total: "t", MinRatio: 0.6},
		{Name: "quant", Series: "s", Quantile: 0.99, MaxValue: 50},
	}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

// TestSLOEngineNilWiring checks the unconditional-wiring contract: nil
// recorder or empty objective list yields a nil engine whose methods no-op.
func TestSLOEngineNilWiring(t *testing.T) {
	if e, err := NewSLOEngine(nil, NewRegistry(), []SLO{{Name: "x", Good: "g", Total: "t"}}); e != nil || err != nil {
		t.Errorf("nil recorder: engine=%v err=%v", e, err)
	}
	rec := NewRecorder(NewRegistry(), RecorderOptions{})
	if e, err := NewSLOEngine(rec, NewRegistry(), nil); e != nil || err != nil {
		t.Errorf("no slos: engine=%v err=%v", e, err)
	}
	var e *SLOEngine
	e.evaluate(0)
	if e.Snapshot() != nil || e.Burning() != nil {
		t.Error("nil engine returned state")
	}
	h := e.Health(nil)
	if h != nil {
		t.Error("nil engine Health(nil) != nil")
	}
}

// TestSLORatioBurn drives a hit-rate objective through a healthy phase, a
// breach phase (the "kill window"), and a recovery, checking the exported
// burn-rate crosses 1 during the breach and the budget depletes.
func TestSLORatioBurn(t *testing.T) {
	reg := NewRegistry()
	served := reg.Counter("starcdn_test_served_total")
	hits := reg.Counter("starcdn_test_hits_total")
	rec := NewRecorder(reg, RecorderOptions{EpochSec: 1})
	eng, err := NewSLOEngine(rec, reg, []SLO{{
		Name:     "hit-rate",
		Good:     "starcdn_test_hits_total",
		Total:    "starcdn_test_served_total",
		MinRatio: 0.5,
		// Window of 4 epochs, 25% budget: one breaching epoch in four is
		// exactly burn 1; two is burn 2.
		WindowSec:      4,
		BudgetFraction: 0.25,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if eng == nil {
		t.Fatal("engine is nil")
	}

	step := func(t0 float64, nServed, nHits int64) {
		served.Add(nServed)
		hits.Add(nHits)
		rec.TickAt(t0)
	}

	// Healthy epochs: 80% hit rate.
	for i := 1; i <= 4; i++ {
		step(float64(i), 10, 8)
	}
	if burning := eng.Burning(); len(burning) != 0 {
		t.Fatalf("burning during healthy phase: %v", burning)
	}
	snap := eng.Snapshot()
	if len(snap) != 1 || snap[0].Breach || snap[0].Value < 0.5 {
		t.Fatalf("healthy snapshot = %+v", snap)
	}

	// Kill window: hit rate collapses to 0% for three epochs. The sliding
	// ΔGood/ΔTotal crosses below 0.5 and breaching epochs accumulate.
	for i := 5; i <= 7; i++ {
		step(float64(i), 10, 0)
	}
	snap = eng.Snapshot()
	if !snap[0].Breach {
		t.Fatalf("no breach after kill window: %+v", snap[0])
	}
	if snap[0].BurnRate <= 1 {
		t.Errorf("burn rate %v during kill window, want > 1", snap[0].BurnRate)
	}
	if got := eng.Burning(); len(got) != 1 || got[0] != "hit-rate" {
		t.Errorf("Burning = %v, want [hit-rate]", got)
	}
	if snap[0].Budget >= 1 {
		t.Errorf("budget %v did not deplete", snap[0].Budget)
	}

	// Exported series carry the slo label and are themselves recorded.
	if v := reg.Gauge("starcdn_slo_breach", L("slo", "hit-rate")).Value(); v != 1 {
		t.Errorf("starcdn_slo_breach = %v, want 1", v)
	}
	if c := reg.Counter("starcdn_slo_breaches_total", L("slo", "hit-rate")).Value(); c == 0 {
		t.Error("starcdn_slo_breaches_total = 0")
	}
	if pts := rec.Window(`starcdn_slo_burn_rate{slo="hit-rate"}`, 0); len(pts) == 0 {
		t.Errorf("burn rate not recorded as a time series; have %v", rec.Series())
	}

	// Recovery: healthy epochs push the breach bits out of the window.
	for i := 8; i <= 14; i++ {
		step(float64(i), 10, 10)
	}
	if burning := eng.Burning(); len(burning) != 0 {
		t.Errorf("still burning after recovery: %v", burning)
	}
}

// TestSLOQuantile drives a latency objective over a recorded histogram.
func TestSLOQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("starcdn_test_latency_ms", []float64{1, 10, 100, 1000})
	rec := NewRecorder(reg, RecorderOptions{EpochSec: 1})
	eng, err := NewSLOEngine(rec, reg, []SLO{{
		Name: "p99", Series: "starcdn_test_latency_ms",
		Quantile: 0.99, MaxValue: 100, WindowSec: 4,
	}})
	if err != nil {
		t.Fatal(err)
	}

	// Fast epochs: everything under 10ms.
	for i := 1; i <= 3; i++ {
		for j := 0; j < 20; j++ {
			h.Observe(5)
		}
		rec.TickAt(float64(i))
	}
	snap := eng.Snapshot()
	if snap[0].Breach || snap[0].Value > 10 {
		t.Fatalf("fast phase snapshot = %+v", snap[0])
	}

	// Stall: tail samples land in the +Inf-adjacent bucket.
	for j := 0; j < 20; j++ {
		h.Observe(900)
	}
	rec.TickAt(4)
	snap = eng.Snapshot()
	if !snap[0].Breach {
		t.Fatalf("no breach after stall: %+v", snap[0])
	}
	if snap[0].Value <= 100 {
		t.Errorf("windowed p99 = %v, want > 100", snap[0].Value)
	}
}

// TestSLOIdleWindows checks epochs without samples neither breach nor burn.
func TestSLOIdleWindows(t *testing.T) {
	reg := NewRegistry()
	rec := NewRecorder(reg, RecorderOptions{EpochSec: 1})
	eng, err := NewSLOEngine(rec, reg, []SLO{{
		Name: "idle", Good: "starcdn_test_hits_total",
		Total: "starcdn_test_served_total", MinRatio: 0.9,
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		rec.TickAt(float64(i))
	}
	snap := eng.Snapshot()
	if snap[0].Evals != 0 || snap[0].Breach || len(eng.Burning()) != 0 {
		t.Errorf("idle engine evaluated: %+v burning=%v", snap[0], eng.Burning())
	}
}

// TestSLOHealth checks the /healthz composition with a base health func.
func TestSLOHealth(t *testing.T) {
	reg := NewRegistry()
	served := reg.Counter("starcdn_test_served_total")
	rec := NewRecorder(reg, RecorderOptions{EpochSec: 1})
	eng, err := NewSLOEngine(rec, reg, []SLO{{
		Name: "hit-rate", Good: "starcdn_test_hits_total",
		Total: "starcdn_test_served_total", MinRatio: 0.9,
		WindowSec: 2, BudgetFraction: 0.01,
	}})
	if err != nil {
		t.Fatal(err)
	}
	base := func() Health { return Health{OK: true, Note: "cluster fine"} }

	if h := eng.Health(base)(); !h.OK {
		t.Fatalf("healthy engine degraded health: %+v", h)
	}
	// All misses: every epoch breaches, burn explodes past 1.
	for i := 1; i <= 3; i++ {
		served.Add(10)
		rec.TickAt(float64(i))
	}
	h := eng.Health(base)()
	if h.OK {
		t.Fatalf("burning engine reported OK: %+v", h)
	}
	found := false
	for _, d := range h.Down {
		if strings.HasPrefix(d, "slo:") {
			found = true
		}
	}
	if !found {
		t.Errorf("Down %v lacks slo: entry", h.Down)
	}
	// Base note survives when present.
	if h.Note != "cluster fine" {
		t.Errorf("Note = %q, want base note preserved", h.Note)
	}
}

// TestSLODescribe pins the human-readable objective strings the dashboard
// shows.
func TestSLODescribe(t *testing.T) {
	r := SLO{Name: "hr", Good: "hits", Total: "served", MinRatio: 0.6, WindowSec: 60}
	if got := r.Describe(); got != "hits/served >= 0.6 over 60s" {
		t.Errorf("ratio Describe = %q", got)
	}
	q := SLO{Name: "lat", Series: "lat_ms", Quantile: 0.99, MaxValue: 50, WindowSec: 300}
	if got := q.Describe(); got != "p99(lat_ms) <= 50 over 300s" {
		t.Errorf("quantile Describe = %q", got)
	}
}

// TestSLOBudgetMath sanity-checks budget_remaining against hand-computed
// values: budget 0.25, 4 evals, 1 breach → 1 - (1/4)/0.25 = 0.
func TestSLOBudgetMath(t *testing.T) {
	reg := NewRegistry()
	served := reg.Counter("starcdn_test_served_total")
	hits := reg.Counter("starcdn_test_hits_total")
	rec := NewRecorder(reg, RecorderOptions{EpochSec: 1})
	eng, err := NewSLOEngine(rec, reg, []SLO{{
		Name: "hr", Good: "starcdn_test_hits_total", Total: "starcdn_test_served_total",
		MinRatio: 0.5, WindowSec: 1, BudgetFraction: 0.25,
	}})
	if err != nil {
		t.Fatal(err)
	}
	// 3 healthy epochs + 1 breach. WindowSec=1 means each epoch evaluates
	// only its own delta.
	for i := 1; i <= 3; i++ {
		served.Add(10)
		hits.Add(10)
		rec.TickAt(float64(i))
	}
	served.Add(10)
	rec.TickAt(4)
	snap := eng.Snapshot()
	if snap[0].Evals != 4 {
		t.Fatalf("evals = %d, want 4", snap[0].Evals)
	}
	if math.Abs(snap[0].Budget-0) > 1e-9 {
		t.Errorf("budget = %v, want 0 (1 - (1/4)/0.25)", snap[0].Budget)
	}
}
