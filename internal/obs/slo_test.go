package obs

import (
	"math"
	"strings"
	"testing"
)

// TestSLOValidate rejects malformed objectives.
func TestSLOValidate(t *testing.T) {
	bad := []SLO{
		{},                     // no name
		{Name: "x"},            // no objective
		{Name: "x", Good: "g"}, // Good without Total
		{Name: "x", Good: "g", Total: "t", MinRatio: 2},                // ratio out of range
		{Name: "x", Series: "s", Quantile: 0},                          // quantile out of range
		{Name: "x", Series: "s", Quantile: 1.5},                        // quantile out of range
		{Name: "x", Series: "s", Quantile: 0.5, Good: "g", Total: "t"}, // mixed forms
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad[%d] %+v validated", i, s)
		}
	}
	good := []SLO{
		{Name: "ratio", Good: "g", Total: "t", MinRatio: 0.6},
		{Name: "quant", Series: "s", Quantile: 0.99, MaxValue: 50},
	}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

// TestSLOEngineNilWiring checks the unconditional-wiring contract: nil
// recorder or empty objective list yields a nil engine whose methods no-op.
func TestSLOEngineNilWiring(t *testing.T) {
	if e, err := NewSLOEngine(nil, NewRegistry(), []SLO{{Name: "x", Good: "g", Total: "t"}}); e != nil || err != nil {
		t.Errorf("nil recorder: engine=%v err=%v", e, err)
	}
	rec := NewRecorder(NewRegistry(), RecorderOptions{})
	if e, err := NewSLOEngine(rec, NewRegistry(), nil); e != nil || err != nil {
		t.Errorf("no slos: engine=%v err=%v", e, err)
	}
	var e *SLOEngine
	e.evaluate(0)
	if e.Snapshot() != nil || e.Burning() != nil {
		t.Error("nil engine returned state")
	}
	h := e.Health(nil)
	if h != nil {
		t.Error("nil engine Health(nil) != nil")
	}
}

// TestSLORatioBurn drives a hit-rate objective through a healthy phase, a
// breach phase (the "kill window"), and a recovery, checking the exported
// burn-rate crosses 1 during the breach and the budget depletes.
func TestSLORatioBurn(t *testing.T) {
	reg := NewRegistry()
	served := reg.Counter("starcdn_test_served_total")
	hits := reg.Counter("starcdn_test_hits_total")
	rec := NewRecorder(reg, RecorderOptions{EpochSec: 1})
	eng, err := NewSLOEngine(rec, reg, []SLO{{
		Name:     "hit-rate",
		Good:     "starcdn_test_hits_total",
		Total:    "starcdn_test_served_total",
		MinRatio: 0.5,
		// Window of 4 epochs, 25% budget: one breaching epoch in four is
		// exactly burn 1; two is burn 2.
		WindowSec:      4,
		BudgetFraction: 0.25,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if eng == nil {
		t.Fatal("engine is nil")
	}

	step := func(t0 float64, nServed, nHits int64) {
		served.Add(nServed)
		hits.Add(nHits)
		rec.TickAt(t0)
	}

	// Healthy epochs: 80% hit rate.
	for i := 1; i <= 4; i++ {
		step(float64(i), 10, 8)
	}
	if burning := eng.Burning(); len(burning) != 0 {
		t.Fatalf("burning during healthy phase: %v", burning)
	}
	snap := eng.Snapshot()
	if len(snap) != 1 || snap[0].Breach || snap[0].Value < 0.5 {
		t.Fatalf("healthy snapshot = %+v", snap)
	}

	// Kill window: hit rate collapses to 0% for three epochs. The sliding
	// ΔGood/ΔTotal crosses below 0.5 and breaching epochs accumulate.
	for i := 5; i <= 7; i++ {
		step(float64(i), 10, 0)
	}
	snap = eng.Snapshot()
	if !snap[0].Breach {
		t.Fatalf("no breach after kill window: %+v", snap[0])
	}
	if snap[0].BurnRate <= 1 {
		t.Errorf("burn rate %v during kill window, want > 1", snap[0].BurnRate)
	}
	if got := eng.Burning(); len(got) != 1 || got[0] != "hit-rate" {
		t.Errorf("Burning = %v, want [hit-rate]", got)
	}
	if snap[0].Budget >= 1 {
		t.Errorf("budget %v did not deplete", snap[0].Budget)
	}

	// Exported series carry the slo label and are themselves recorded.
	if v := reg.Gauge("starcdn_slo_breach", L("slo", "hit-rate")).Value(); v != 1 {
		t.Errorf("starcdn_slo_breach = %v, want 1", v)
	}
	if c := reg.Counter("starcdn_slo_breaches_total", L("slo", "hit-rate")).Value(); c == 0 {
		t.Error("starcdn_slo_breaches_total = 0")
	}
	if pts := rec.Window(`starcdn_slo_burn_rate{slo="hit-rate"}`, 0); len(pts) == 0 {
		t.Errorf("burn rate not recorded as a time series; have %v", rec.Series())
	}

	// Recovery: healthy epochs push the breach bits out of the window.
	for i := 8; i <= 14; i++ {
		step(float64(i), 10, 10)
	}
	if burning := eng.Burning(); len(burning) != 0 {
		t.Errorf("still burning after recovery: %v", burning)
	}
}

// TestSLOQuantile drives a latency objective over a recorded histogram.
func TestSLOQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("starcdn_test_latency_ms", []float64{1, 10, 100, 1000})
	rec := NewRecorder(reg, RecorderOptions{EpochSec: 1})
	eng, err := NewSLOEngine(rec, reg, []SLO{{
		Name: "p99", Series: "starcdn_test_latency_ms",
		Quantile: 0.99, MaxValue: 100, WindowSec: 4,
	}})
	if err != nil {
		t.Fatal(err)
	}

	// Fast epochs: everything under 10ms.
	for i := 1; i <= 3; i++ {
		for j := 0; j < 20; j++ {
			h.Observe(5)
		}
		rec.TickAt(float64(i))
	}
	snap := eng.Snapshot()
	if snap[0].Breach || snap[0].Value > 10 {
		t.Fatalf("fast phase snapshot = %+v", snap[0])
	}

	// Stall: tail samples land in the +Inf-adjacent bucket.
	for j := 0; j < 20; j++ {
		h.Observe(900)
	}
	rec.TickAt(4)
	snap = eng.Snapshot()
	if !snap[0].Breach {
		t.Fatalf("no breach after stall: %+v", snap[0])
	}
	if snap[0].Value <= 100 {
		t.Errorf("windowed p99 = %v, want > 100", snap[0].Value)
	}
}

// TestSLOIdleWindows checks epochs without samples neither breach nor burn.
func TestSLOIdleWindows(t *testing.T) {
	reg := NewRegistry()
	rec := NewRecorder(reg, RecorderOptions{EpochSec: 1})
	eng, err := NewSLOEngine(rec, reg, []SLO{{
		Name: "idle", Good: "starcdn_test_hits_total",
		Total: "starcdn_test_served_total", MinRatio: 0.9,
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		rec.TickAt(float64(i))
	}
	snap := eng.Snapshot()
	if snap[0].Evals != 0 || snap[0].Breach || len(eng.Burning()) != 0 {
		t.Errorf("idle engine evaluated: %+v burning=%v", snap[0], eng.Burning())
	}
}

// TestSLOHealth checks the /healthz composition with a base health func.
func TestSLOHealth(t *testing.T) {
	reg := NewRegistry()
	served := reg.Counter("starcdn_test_served_total")
	rec := NewRecorder(reg, RecorderOptions{EpochSec: 1})
	eng, err := NewSLOEngine(rec, reg, []SLO{{
		Name: "hit-rate", Good: "starcdn_test_hits_total",
		Total: "starcdn_test_served_total", MinRatio: 0.9,
		WindowSec: 2, BudgetFraction: 0.01,
	}})
	if err != nil {
		t.Fatal(err)
	}
	base := func() Health { return Health{OK: true, Note: "cluster fine"} }

	if h := eng.Health(base)(); !h.OK {
		t.Fatalf("healthy engine degraded health: %+v", h)
	}
	// All misses: every epoch breaches, burn explodes past 1.
	for i := 1; i <= 3; i++ {
		served.Add(10)
		rec.TickAt(float64(i))
	}
	h := eng.Health(base)()
	if h.OK {
		t.Fatalf("burning engine reported OK: %+v", h)
	}
	found := false
	for _, d := range h.Down {
		if strings.HasPrefix(d, "slo:") {
			found = true
		}
	}
	if !found {
		t.Errorf("Down %v lacks slo: entry", h.Down)
	}
	// Base note survives when present.
	if h.Note != "cluster fine" {
		t.Errorf("Note = %q, want base note preserved", h.Note)
	}
}

// TestSLODescribe pins the human-readable objective strings the dashboard
// shows.
func TestSLODescribe(t *testing.T) {
	r := SLO{Name: "hr", Good: "hits", Total: "served", MinRatio: 0.6, WindowSec: 60}
	if got := r.Describe(); got != "hits/served >= 0.6 over 60s" {
		t.Errorf("ratio Describe = %q", got)
	}
	q := SLO{Name: "lat", Series: "lat_ms", Quantile: 0.99, MaxValue: 50, WindowSec: 300}
	if got := q.Describe(); got != "p99(lat_ms) <= 50 over 300s" {
		t.Errorf("quantile Describe = %q", got)
	}
}

// TestSLOZeroTrafficBurnIsZero pins the zero-traffic contract for both
// objective forms: registered-but-silent series produce skipped epochs, so
// the burn rate stays exactly 0 — never NaN from a 0/0 ratio or an empty
// histogram quantile — and a burst of traffic followed by silence leaves the
// last computed burn in place rather than poisoning it.
func TestSLOZeroTrafficBurnIsZero(t *testing.T) {
	reg := NewRegistry()
	served := reg.Counter("starcdn_test_served_total")
	hits := reg.Counter("starcdn_test_hits_total")
	reg.Histogram("starcdn_test_latency_ms", []float64{1, 10, 100})
	rec := NewRecorder(reg, RecorderOptions{EpochSec: 1})
	eng, err := NewSLOEngine(rec, reg, []SLO{
		{Name: "ratio", Good: "starcdn_test_hits_total",
			Total: "starcdn_test_served_total", MinRatio: 0.5, WindowSec: 4},
		{Name: "quant", Series: "starcdn_test_latency_ms",
			Quantile: 0.99, MaxValue: 100, WindowSec: 4},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Both series exist in the registry (so the recorder snapshots them at
	// value 0 each epoch) but carry no traffic: every window's ΔTotal is 0
	// and every histogram window is empty.
	for i := 1; i <= 5; i++ {
		rec.TickAt(float64(i))
	}
	for _, s := range eng.Snapshot() {
		if s.Evals != 0 {
			t.Errorf("%s evaluated %d zero-traffic epochs", s.Name, s.Evals)
		}
		if math.IsNaN(s.BurnRate) || s.BurnRate != 0 {
			t.Errorf("%s zero-traffic burn = %v, want 0", s.Name, s.BurnRate)
		}
		if math.IsNaN(s.Budget) {
			t.Errorf("%s zero-traffic budget is NaN", s.Name)
		}
	}
	if b := eng.MaxBurn(); b != 0 {
		t.Errorf("MaxBurn = %v over zero traffic, want 0", b)
	}

	// One healthy epoch of traffic, then silence again: the burst remains
	// visible for WindowSec of trailing windows (epochs 6-9 evaluate, epoch
	// 10's delta is 0 and skips), and the engine holds the last evaluated
	// state instead of decaying it through 0/0 arithmetic.
	served.Add(10)
	hits.Add(10)
	reg.Histogram("starcdn_test_latency_ms", []float64{1, 10, 100}).Observe(5)
	rec.TickAt(6)
	for i := 7; i <= 10; i++ {
		rec.TickAt(float64(i))
	}
	for _, s := range eng.Snapshot() {
		if s.Evals != 4 {
			t.Errorf("%s evals = %d after one traffic epoch, want 4", s.Name, s.Evals)
		}
		if math.IsNaN(s.BurnRate) || s.BurnRate != 0 {
			t.Errorf("%s post-idle burn = %v, want 0", s.Name, s.BurnRate)
		}
	}
	if b := eng.MaxBurn(); b != 0 {
		t.Errorf("MaxBurn = %v after healthy traffic, want 0", b)
	}
}

// TestSLOWindowShorterThanEpoch: a WindowSec below the recorder's epoch
// clamps the breach history to a single epoch, so the burn rate swings the
// full range each evaluation instead of dividing by a zero-length window.
func TestSLOWindowShorterThanEpoch(t *testing.T) {
	reg := NewRegistry()
	served := reg.Counter("starcdn_test_served_total")
	hits := reg.Counter("starcdn_test_hits_total")
	rec := NewRecorder(reg, RecorderOptions{EpochSec: 10})
	eng, err := NewSLOEngine(rec, reg, []SLO{{
		Name: "subepoch", Good: "starcdn_test_hits_total",
		Total: "starcdn_test_served_total", MinRatio: 0.5,
		// 3s window under 10s epochs: int(3/10) == 0 history slots before the
		// clamp to 1.
		WindowSec:      3,
		BudgetFraction: 0.5,
	}})
	if err != nil {
		t.Fatal(err)
	}
	step := func(t0 float64, nServed, nHits int64) SLOStatus {
		served.Add(nServed)
		hits.Add(nHits)
		rec.TickAt(t0)
		return eng.Snapshot()[0]
	}

	if s := step(10, 10, 10); s.BurnRate != 0 || math.IsNaN(s.BurnRate) {
		t.Errorf("healthy epoch burn = %v, want 0", s.BurnRate)
	}
	// A breaching epoch: the one-slot history is 100% breached, burn 1/0.5.
	if s := step(20, 10, 0); s.BurnRate != 2 {
		t.Errorf("breaching epoch burn = %v, want 2", s.BurnRate)
	}
	if got := eng.Burning(); len(got) != 1 || got[0] != "subepoch" {
		t.Errorf("Burning = %v, want [subepoch]", got)
	}
	// Recovery is immediate: with history clamped to one epoch the prior
	// breach bit cannot linger (a 2-slot window would leave burn at 1 here).
	if s := step(30, 10, 10); s.BurnRate != 0 {
		t.Errorf("post-recovery burn = %v, want 0", s.BurnRate)
	}
	if got := eng.Burning(); len(got) != 0 {
		t.Errorf("still burning after one clean epoch: %v", got)
	}
}

// TestSLOQuantileSingleSample: a window holding exactly one histogram sample
// evaluates to a value inside that sample's bucket — the degenerate rank
// q*1 < 1 must not skip the only occupied bucket or return NaN.
func TestSLOQuantileSingleSample(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("starcdn_test_latency_ms", []float64{1, 10, 100, 1000})
	rec := NewRecorder(reg, RecorderOptions{EpochSec: 1})
	eng, err := NewSLOEngine(rec, reg, []SLO{{
		Name: "p99", Series: "starcdn_test_latency_ms",
		Quantile: 0.99, MaxValue: 100, WindowSec: 1,
	}})
	if err != nil {
		t.Fatal(err)
	}

	// One fast sample: p99 of a single observation at 5ms interpolates inside
	// the (1,10] bucket and stays under the objective.
	h.Observe(5)
	rec.TickAt(1)
	s := eng.Snapshot()[0]
	if s.Evals != 1 {
		t.Fatalf("evals = %d after single-sample window, want 1", s.Evals)
	}
	if math.IsNaN(s.Value) || s.Value <= 1 || s.Value > 10 {
		t.Errorf("single-sample p99 = %v, want in (1,10]", s.Value)
	}
	if s.Breach || s.BurnRate != 0 {
		t.Errorf("single fast sample breached: %+v", s)
	}

	// One slow sample in the next window: the same degenerate rank lands in
	// the (100,1000] bucket and breaches.
	h.Observe(900)
	rec.TickAt(2)
	s = eng.Snapshot()[0]
	if math.IsNaN(s.Value) || s.Value <= 100 || s.Value > 1000 {
		t.Errorf("single slow sample p99 = %v, want in (100,1000]", s.Value)
	}
	if !s.Breach {
		t.Errorf("single slow sample did not breach: %+v", s)
	}
}

// TestSLOBudgetMath sanity-checks budget_remaining against hand-computed
// values: budget 0.25, 4 evals, 1 breach → 1 - (1/4)/0.25 = 0.
func TestSLOBudgetMath(t *testing.T) {
	reg := NewRegistry()
	served := reg.Counter("starcdn_test_served_total")
	hits := reg.Counter("starcdn_test_hits_total")
	rec := NewRecorder(reg, RecorderOptions{EpochSec: 1})
	eng, err := NewSLOEngine(rec, reg, []SLO{{
		Name: "hr", Good: "starcdn_test_hits_total", Total: "starcdn_test_served_total",
		MinRatio: 0.5, WindowSec: 1, BudgetFraction: 0.25,
	}})
	if err != nil {
		t.Fatal(err)
	}
	// 3 healthy epochs + 1 breach. WindowSec=1 means each epoch evaluates
	// only its own delta.
	for i := 1; i <= 3; i++ {
		served.Add(10)
		hits.Add(10)
		rec.TickAt(float64(i))
	}
	served.Add(10)
	rec.TickAt(4)
	snap := eng.Snapshot()
	if snap[0].Evals != 4 {
		t.Fatalf("evals = %d, want 4", snap[0].Evals)
	}
	if math.Abs(snap[0].Budget-0) > 1e-9 {
		t.Errorf("budget = %v, want 0 (1 - (1/4)/0.25)", snap[0].Budget)
	}
}
