package obs

import (
	"fmt"
	"math"
	"sync"

	"starcdn/internal/obs/sketch"
)

// defaultTopKEntries is the tracked-entry capacity a TopK instrument gets
// when the caller passes k <= 0.
const defaultTopKEntries = 32

// promTopKRanks bounds how many rank-indexed rows a TopK instrument emits
// on the Prometheus exposition (and how many rank rings the flight recorder
// keeps). The full tracked set — keys, errors, exemplars — is only on
// /popularity.json and the JSON exposition, so object identities never
// become label values.
const promTopKRanks = 8

// SketchQuantiles are the quantiles a Sketch instrument exposes as
// bounded-cardinality rows (`name_q{q="..."}`) and records per epoch.
var SketchQuantiles = []float64{0.5, 0.9, 0.99}

// hashKey is FNV-1a over the key string: the stable string→uint64 mapping
// the popularity sketches index on. Display names ride alongside in a
// bounded table, so hashes never leak into expositions.
func hashKey(s string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// TopKEntry is one ranked entry of a TopK snapshot. Count overestimates the
// key's true frequency by at most Err; Refined is min(Count, Count-Min
// estimate) — a valid, usually tighter, upper bound.
type TopKEntry struct {
	Key      string          `json:"key"`
	Count    int64           `json:"count"`
	Err      int64           `json:"err"`
	Refined  int64           `json:"refined"`
	Exemplar sketch.Exemplar `json:"exemplar"`
}

// TopKShard is the single-owner form of a TopK instrument: a Space-Saving
// summary, a Count-Min refinement grid, and a bounded name table, with no
// shard-level lock of its own (the summaries self-lock, so a single-owner
// worker pays only uncontended locks). Per-worker shards absorb updates and
// merge into the registry's TopK instrument at deterministic barriers
// (segment boundaries in the concurrent replayer).
type TopKShard struct {
	ss    *sketch.SpaceSaving
	cm    *sketch.CountMin
	names map[uint64]string
	// namer renders a display name from an integer key fed through
	// ObserveIDEx; nil for string-keyed shards. Rendering happens at
	// exposition time only, so the per-update path never builds a string.
	namer func(uint64) string
}

// NewTopKShard returns a shard tracking at most k entries (k <= 0 selects
// the default capacity).
func NewTopKShard(k int) *TopKShard {
	if k <= 0 {
		k = defaultTopKEntries
	}
	return &TopKShard{
		ss:    sketch.NewSpaceSaving(k),
		cm:    sketch.NewCountMin(1024, 4),
		names: make(map[uint64]string, 2*k),
	}
}

// Observe adds weight inc to key (no-op on nil shards or inc <= 0).
func (t *TopKShard) Observe(key string, inc int64) { t.ObserveEx(key, inc, sketch.Exemplar{}) }

// ObserveEx is Observe carrying a trace exemplar for the contributing
// request.
func (t *TopKShard) ObserveEx(key string, inc int64, ex sketch.Exemplar) {
	if t == nil || inc <= 0 {
		return
	}
	h := hashKey(key)
	if evicted, ok := t.ss.UpdateEvict(h, inc, ex); ok {
		// The victim is no longer tracked; dropping its display name here
		// keeps the table bounded by k without periodic sweeps.
		delete(t.names, evicted)
	}
	t.cm.Update(h, inc)
	if _, ok := t.names[h]; !ok {
		t.names[h] = key
		if len(t.names) > 4*t.ss.K() {
			t.pruneNames() // merge-imported keys can still accumulate
		}
	}
}

// SetNamer registers the display-name renderer for integer-keyed shards
// (ObserveIDEx). Call once at resolve time, before concurrent updates.
func (t *TopKShard) SetNamer(f func(uint64) string) {
	if t == nil {
		return
	}
	//lint:ignore lockguard namer is written once before the shard is shared (resolve time; the TopK instrument path additionally holds its mu), so every later read happens-after the write
	t.namer = f
}

// ObserveID records an update keyed by an integer identity (object ID,
// satellite ID, bucket index) instead of a string. The key IS the identity —
// no hashing, no name-table traffic — and the display name is rendered
// lazily at exposition time by the namer (SetNamer). An instrument must be
// fed through exactly one of the string or ID paths: the two key spaces do
// not mix.
func (t *TopKShard) ObserveID(id uint64, inc int64) { t.ObserveIDEx(id, inc, sketch.Exemplar{}) }

// ObserveIDEx is ObserveID carrying a trace exemplar.
func (t *TopKShard) ObserveIDEx(id uint64, inc int64, ex sketch.Exemplar) {
	if t == nil || inc <= 0 {
		return
	}
	t.ss.UpdateEx(id, inc, ex)
	t.cm.Update(id, inc)
}

// pruneNames drops name-table entries for keys the summary no longer
// tracks, keeping the table (and therefore the shard) bounded by k.
func (t *TopKShard) pruneNames() {
	tracked := make(map[uint64]bool, t.ss.Len())
	for _, e := range t.ss.Top() {
		tracked[e.Key] = true
	}
	for h := range t.names {
		if !tracked[h] {
			delete(t.names, h)
		}
	}
}

// N returns the total stream weight observed (0 on nil).
func (t *TopKShard) N() int64 {
	if t == nil {
		return 0
	}
	return t.ss.N()
}

// Reset clears the shard for the next segment.
func (t *TopKShard) Reset() {
	if t == nil {
		return
	}
	t.ss.Reset()
	t.cm.Reset()
	clear(t.names)
}

// top renders the ranked entries with display names and refined estimates.
func (t *TopKShard) top() []TopKEntry {
	entries := t.ss.Top()
	out := make([]TopKEntry, 0, len(entries))
	for _, e := range entries {
		name, ok := t.names[e.Key]
		if !ok {
			if t.namer != nil {
				name = t.namer(e.Key)
			} else {
				// A merge can import an entry whose name the donor had
				// pruned; fall back to the hash so the row stays
				// identifiable.
				name = fmt.Sprintf("key-%016x", e.Key)
			}
		}
		refined := e.Count
		if est := t.cm.Estimate(e.Key); est < refined {
			refined = est
		}
		out = append(out, TopKEntry{Key: name, Count: e.Count, Err: e.Err, Refined: refined, Exemplar: e.Ex})
	}
	return out
}

// merge folds o into t: mergeable-summaries merge for the Space-Saving
// side, exact element-wise merge for the Count-Min grid, union for names.
func (t *TopKShard) merge(o *TopKShard) {
	if t == nil || o == nil {
		return
	}
	t.ss.Merge(o.ss)
	t.cm.Merge(o.cm)
	for h, name := range o.names {
		t.names[h] = name
	}
	t.pruneNames()
}

// TopK is a registry instrument tracking the approximate top-K keys of a
// stream (hot objects, hot satellites, hot buckets) in bounded memory: a
// mutex-protected TopKShard. Updates from concurrent goroutines are safe; a
// nil TopK ignores every call (the disabled-registry path).
type TopK struct {
	mu    sync.Mutex
	shard *TopKShard
}

func newTopK(k int) *TopK { return &TopK{shard: NewTopKShard(k)} }

// Observe adds weight inc to key (no-op on nil).
func (t *TopK) Observe(key string, inc int64) { t.ObserveEx(key, inc, sketch.Exemplar{}) }

// ObserveEx is Observe carrying a trace exemplar.
func (t *TopK) ObserveEx(key string, inc int64, ex sketch.Exemplar) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.shard.ObserveEx(key, inc, ex)
	t.mu.Unlock()
}

// ObserveID records an update keyed by an integer identity; the display
// name is rendered lazily by the namer (SetNamer). See TopKShard.ObserveID.
func (t *TopK) ObserveID(id uint64, inc int64) { t.ObserveIDEx(id, inc, sketch.Exemplar{}) }

// ObserveIDEx is ObserveID carrying a trace exemplar.
func (t *TopK) ObserveIDEx(id uint64, inc int64, ex sketch.Exemplar) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.shard.ObserveIDEx(id, inc, ex)
	t.mu.Unlock()
}

// SetNamer registers the display-name renderer for the ID-keyed observe
// path. Resolving the same instrument twice re-registers harmlessly.
func (t *TopK) SetNamer(f func(uint64) string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.shard.SetNamer(f)
	t.mu.Unlock()
}

// MergeShard folds a single-owner shard into the instrument — the
// deterministic barrier merge the concurrent replayer performs per segment.
// The shard is not modified.
func (t *TopK) MergeShard(s *TopKShard) {
	if t == nil || s == nil {
		return
	}
	t.mu.Lock()
	t.shard.merge(s)
	t.mu.Unlock()
}

// N returns the total stream weight observed (0 on nil).
func (t *TopK) N() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.shard.N()
}

// Top returns the ranked entries (count desc, key asc), refined against the
// Count-Min grid, with display names resolved. Nil-safe.
func (t *TopK) Top() []TopKEntry {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.shard.top()
}

// Sketch is a registry instrument summarising a value distribution with a
// relative-error quantile sketch: a mutex-protected sketch.Quantile.
// Concurrent observers are safe; a nil Sketch ignores every call.
type Sketch struct {
	mu sync.Mutex
	q  *sketch.Quantile
}

func newSketchInstrument(alpha float64) *Sketch {
	return &Sketch{q: sketch.NewQuantile(alpha, 0)}
}

// Observe records one sample (no-op on nil).
func (s *Sketch) Observe(x float64) { s.ObserveEx(x, sketch.Exemplar{}) }

// ObserveEx is Observe carrying a trace exemplar.
func (s *Sketch) ObserveEx(x float64, ex sketch.Exemplar) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.q.ObserveEx(x, ex)
	s.mu.Unlock()
}

// MergeQuantile folds a single-owner quantile sketch (a per-worker shard)
// into the instrument. The donor is not modified.
func (s *Sketch) MergeQuantile(q *sketch.Quantile) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.q.Merge(q)
	s.mu.Unlock()
}

// Count returns the number of observations (0 on nil).
func (s *Sketch) Count() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.q.Count()
}

// Quantile returns the q-quantile estimate (NaN when empty or nil).
func (s *Sketch) Quantile(q float64) float64 {
	if s == nil {
		return math.NaN()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.q.Quantile(q)
}

// snapshotSketch freezes the exposition view of the instrument: values and
// exemplars at SketchQuantiles, plus count/sum/min/max.
func (s *Sketch) snapshotSketch() (qv []float64, ex []sketch.Exemplar, count int64, sum, min, max float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	qv = make([]float64, len(SketchQuantiles))
	ex = make([]sketch.Exemplar, len(SketchQuantiles))
	for i, q := range SketchQuantiles {
		qv[i] = s.q.Quantile(q)
		ex[i], _ = s.q.ExemplarNear(q)
	}
	return qv, ex, s.q.Count(), s.q.Sum(), s.q.Min(), s.q.Max()
}
