package obs

import (
	"fmt"
	"runtime/metrics"
	"sync"
	"time"
)

// RuntimeBridge samples the Go runtime's own telemetry (runtime/metrics)
// into the starcdn_go_* gauge family, so a chaos or shed run shows GC and
// goroutine behaviour in the same /metrics scrape, flight-recorder rings,
// /timeseries.json epochs, and dashboard as hit rate and burn rate.
//
// The bridge pre-registers its gauges and pre-builds its sample batch at
// construction; Sample only reads the runtime and stores — it allocates
// nothing and registers nothing, which makes it safe to run inside the
// recorder's snapshot lock (BindRecorder attaches it as a pre-epoch hook so
// each epoch's ring slot carries that epoch's runtime sample).
//
// Every series is a gauge — even the monotone ones (gc cycles) — so
// /timeseries.json's ?form=delta|rate transforms apply uniformly and a
// process restart shows up as a counter reset (clamped by the transform)
// rather than a lie. A nil *RuntimeBridge no-ops everywhere, matching the
// registry's nil discipline.
type RuntimeBridge struct {
	mu      sync.Mutex // metrics.Read batches are not safe for concurrent reuse
	samples []metrics.Sample

	goroutines *Gauge
	heapBytes  *Gauge
	totalBytes *Gauge
	gcCycles   *Gauge
	gcPause    *Gauge
	schedP99   *Gauge

	prevPause *metrics.Float64Histogram // last /gc/pauses snapshot, for deltas
	status    RuntimeStatus             // last sample, for /healthz and the dashboard
}

// The runtime/metrics names the bridge samples, in batch order.
const (
	rmGoroutines = "/sched/goroutines:goroutines"
	rmHeapBytes  = "/memory/classes/heap/objects:bytes"
	rmTotalBytes = "/memory/classes/total:bytes"
	rmGCCycles   = "/gc/cycles/total:gc-cycles"
	rmGCPauses   = "/gc/pauses:seconds"
	rmSchedLat   = "/sched/latencies:seconds"
)

// RuntimeStatus is one sample of the bridge, the struct behind the /healthz
// runtime line and the dashboard panel.
type RuntimeStatus struct {
	Goroutines     int64
	HeapBytes      uint64
	TotalBytes     uint64
	GCCycles       uint64
	LastGCPauseSec float64 // upper bound of the newest pause bucket; sticky between GCs
	SchedP99Sec    float64 // p99 of the cumulative scheduling-latency distribution
}

// NewRuntimeBridge builds a bridge registering its gauges in reg. A nil
// registry is allowed: the bridge still samples (Status and HealthLine work)
// but exports no series.
func NewRuntimeBridge(reg *Registry) *RuntimeBridge {
	b := &RuntimeBridge{
		samples: []metrics.Sample{
			{Name: rmGoroutines},
			{Name: rmHeapBytes},
			{Name: rmTotalBytes},
			{Name: rmGCCycles},
			{Name: rmGCPauses},
			{Name: rmSchedLat},
		},
	}
	if reg != nil {
		b.goroutines = reg.Gauge("starcdn_go_goroutines")
		b.heapBytes = reg.Gauge("starcdn_go_heap_objects_bytes")
		b.totalBytes = reg.Gauge("starcdn_go_mem_total_bytes")
		b.gcCycles = reg.Gauge("starcdn_go_gc_cycles")
		b.gcPause = reg.Gauge("starcdn_go_gc_pause_last_seconds")
		b.schedP99 = reg.Gauge("starcdn_go_sched_latency_p99_seconds")
	}
	return b
}

// Sample reads the runtime, updates the gauges, and returns the snapshot.
// Nil-safe; safe for concurrent use (serialised internally).
func (b *RuntimeBridge) Sample() RuntimeStatus {
	if b == nil {
		return RuntimeStatus{}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	metrics.Read(b.samples)

	st := RuntimeStatus{LastGCPauseSec: b.status.LastGCPauseSec}
	for i := range b.samples {
		s := &b.samples[i]
		switch s.Name {
		case rmGoroutines:
			if s.Value.Kind() == metrics.KindUint64 {
				st.Goroutines = int64(s.Value.Uint64())
			}
		case rmHeapBytes:
			if s.Value.Kind() == metrics.KindUint64 {
				st.HeapBytes = s.Value.Uint64()
			}
		case rmTotalBytes:
			if s.Value.Kind() == metrics.KindUint64 {
				st.TotalBytes = s.Value.Uint64()
			}
		case rmGCCycles:
			if s.Value.Kind() == metrics.KindUint64 {
				st.GCCycles = s.Value.Uint64()
			}
		case rmGCPauses:
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				h := s.Value.Float64Histogram()
				if p, ok := newestBucketUpper(h, b.prevPause); ok {
					st.LastGCPauseSec = p
				}
				b.prevPause = cloneHist(h)
			}
		case rmSchedLat:
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				st.SchedP99Sec = histQuantileUpper(s.Value.Float64Histogram(), 0.99)
			}
		}
	}

	b.status = st
	b.goroutines.Set(float64(st.Goroutines))
	b.heapBytes.Set(float64(st.HeapBytes))
	b.totalBytes.Set(float64(st.TotalBytes))
	b.gcCycles.Set(float64(st.GCCycles))
	b.gcPause.Set(st.LastGCPauseSec)
	b.schedP99.Set(st.SchedP99Sec)
	return st
}

// Status returns the last sample without re-reading the runtime. Nil-safe.
func (b *RuntimeBridge) Status() RuntimeStatus {
	if b == nil {
		return RuntimeStatus{}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.status
}

// HealthLine samples the runtime and renders the compact /healthz line, e.g.
// "goroutines=12 heap=2.5MiB total=13.1MiB gc=4 pause=128µs sched_p99=33µs".
// Nil bridges return "".
func (b *RuntimeBridge) HealthLine() string {
	if b == nil {
		return ""
	}
	st := b.Sample()
	return fmt.Sprintf("goroutines=%d heap=%s total=%s gc=%d pause=%s sched_p99=%s",
		st.Goroutines, fmtBytes(st.HeapBytes), fmtBytes(st.TotalBytes),
		st.GCCycles, fmtSeconds(st.LastGCPauseSec), fmtSeconds(st.SchedP99Sec))
}

// BindRecorder samples the runtime on every recorder epoch, inside the
// snapshot, so each epoch's rings carry that epoch's runtime state. Nil-safe
// on both sides.
func (b *RuntimeBridge) BindRecorder(rec *Recorder) {
	if b == nil || rec == nil {
		return
	}
	rec.OnEpochPre(func(float64) { b.Sample() })
}

// newestBucketUpper finds the highest finite bucket of h that gained counts
// since prev (a cumulative-histogram delta) and returns its upper bound — the
// bridge's "last GC pause" approximation. With no previous snapshot the whole
// histogram counts as new; ok is false when nothing new landed.
func newestBucketUpper(h, prev *metrics.Float64Histogram) (pause float64, ok bool) {
	if h == nil || len(h.Counts) == 0 {
		return 0, false
	}
	for i := len(h.Counts) - 1; i >= 0; i-- {
		c := h.Counts[i]
		if prev != nil && i < len(prev.Counts) {
			c -= prev.Counts[i]
		}
		if c == 0 {
			continue
		}
		// Buckets[i+1] is the bucket's upper bound; fall back to the lower
		// bound when the histogram's last bucket is +Inf-capped.
		if i+1 < len(h.Buckets) && !isInf(h.Buckets[i+1]) {
			return h.Buckets[i+1], true
		}
		if i < len(h.Buckets) {
			return h.Buckets[i], true
		}
		return 0, false
	}
	return 0, false
}

// histQuantileUpper returns the upper bound of the bucket containing quantile
// q of a cumulative runtime/metrics histogram (0 when empty).
func histQuantileUpper(h *metrics.Float64Histogram, q float64) float64 {
	if h == nil || len(h.Counts) == 0 {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	want := uint64(q * float64(total))
	if want >= total {
		want = total - 1
	}
	var seen uint64
	for i, c := range h.Counts {
		seen += c
		if c > 0 && seen > want {
			if i+1 < len(h.Buckets) && !isInf(h.Buckets[i+1]) {
				return h.Buckets[i+1]
			}
			if i < len(h.Buckets) {
				return h.Buckets[i]
			}
			return 0
		}
	}
	return 0
}

func cloneHist(h *metrics.Float64Histogram) *metrics.Float64Histogram {
	if h == nil {
		return nil
	}
	return &metrics.Float64Histogram{
		Counts:  append([]uint64(nil), h.Counts...),
		Buckets: append([]float64(nil), h.Buckets...),
	}
}

func isInf(f float64) bool { return f > 1e300 || f < -1e300 }

// fmtBytes renders a byte count with a binary-unit suffix, one decimal.
func fmtBytes(n uint64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%dB", n)
	}
	div, exp := uint64(unit), 0
	for v := n / unit; v >= unit; v /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f%ciB", float64(n)/float64(div), "KMGTPE"[exp])
}

// fmtSeconds renders a duration in seconds with time.Duration's adaptive
// unit formatting ("128µs", "1.5ms").
func fmtSeconds(s float64) string {
	d := time.Duration(s * float64(time.Second))
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.String()
	}
}
