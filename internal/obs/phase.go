package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// PhaseProfiler is the deterministic per-stage timer for a request pipeline:
// it attributes wall-clock cost to the named stages of the sim hot path
// (scheduler lookup, hash ownership, cache op, relay/ground path, shed tick,
// obs emit) or the replayer round trip (dial, frame-write, frame-read,
// retry), and exposes the attribution two ways — per-epoch seconds
// histograms under starcdn_phase_stage_seconds{pipeline,stage} and a
// whole-run Breakdown for reports.
//
// The measurement discipline mirrors Metrics/Tracer: marks only *read* the
// monotonic clock and add into write-only atomic accumulators — they never
// touch a seeded RNG stream, the request, or any simulation state — so
// results are byte-identical with phases on or off. A nil *PhaseProfiler is
// the disabled configuration: Clock returns an inert clock whose marks cost
// one pointer test and never read the clock.
//
// Per-request cost when enabled is one monotonic-clock read per stage
// boundary (a mark chain: each Mark both closes the previous stage and opens
// the next), which is what keeps the profiler inside its ≤2% overhead budget
// on the ~17µs/request sim hot path (see BENCH_obs.json,
// metrics+phases+runtime variant).
//
// Aggregation is epoch-based: marks accumulate nanoseconds per stage;
// FlushEpoch drains the accumulators into the histograms (one observation =
// one epoch's seconds in that stage). Bind the profiler to a flight recorder
// with BindRecorder so flushes ride the recorder's epoch cadence and the
// per-epoch stage costs land in the same /timeseries.json epochs as every
// other series.
type PhaseProfiler struct {
	pipeline string
	stages   []string
	hists    []*Histogram
	accum    []atomic.Int64 // ns per stage since the last flush
	flushed  []atomic.Int64 // ns per stage drained by past flushes
	epochs   atomic.Int64   // flushes that recorded at least one stage
}

// DefPhaseBucketsSec is the default bucket geometry of the per-epoch stage
// histograms: an epoch's time in one stage ranges from microseconds (an idle
// stage over a short epoch) to whole seconds (the dominant stage of a busy
// wall-clock epoch).
var DefPhaseBucketsSec = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 0.01, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Sim pipeline stage indices, aligned with SimPhaseStages. The runner marks
// shed/sched/obs; the StarCDN policy marks hash/cache/relay as the request
// traverses Serve (policies without internal marks leave their serve time
// attributed to the obs stage).
const (
	PhaseSimShed  = iota // failure cursor, shed-controller tick, recorder tick
	PhaseSimSched        // first-contact lookup through pre-serve setup
	PhaseSimHash         // bucket ownership, shed checks, ISL route latency
	PhaseSimCache        // owner cache get
	PhaseSimRelay        // relay probes, neighbour serve, ground fetch, admits
	PhaseSimObs          // user link, meters, instruments, span emit
)

// Replay pipeline stage indices, aligned with ReplayPhaseStages.
const (
	PhaseReplayDial  = iota // dial plus the per-connection hello negotiation
	PhaseReplayWrite        // deadline arm, trace-context and request frames
	PhaseReplayRead         // response frame read
	PhaseReplayRetry        // backoff sleeps between attempts
)

// SimPhaseStages and ReplayPhaseStages are the canonical stage vocabularies
// of the two instrumented pipelines, indexed by the PhaseSim*/PhaseReplay*
// constants.
var (
	SimPhaseStages    = []string{"shed", "sched", "hash", "cache", "relay", "obs"}
	ReplayPhaseStages = []string{"dial", "frame-write", "frame-read", "retry"}
)

// NewPhaseProfiler builds a profiler for a pipeline with the given stage
// names. A nil registry is allowed: the profiler still accumulates (Breakdown
// works, e.g. for a CLI run without a metrics endpoint) but registers no
// histogram series. Use NewSimPhases/NewReplayPhases for the canonical
// pipelines — their stage indices are what sim.Run and the replay client
// mark.
func NewPhaseProfiler(reg *Registry, pipeline string, stages ...string) *PhaseProfiler {
	p := &PhaseProfiler{
		pipeline: pipeline,
		stages:   append([]string(nil), stages...),
		hists:    make([]*Histogram, len(stages)),
		accum:    make([]atomic.Int64, len(stages)),
		flushed:  make([]atomic.Int64, len(stages)),
	}
	if reg != nil {
		for i, st := range p.stages {
			p.hists[i] = reg.Histogram("starcdn_phase_stage_seconds",
				DefPhaseBucketsSec, L("pipeline", pipeline), L("stage", st))
		}
	}
	return p
}

// NewSimPhases builds the sim-pipeline profiler (stage indices PhaseSim*).
// Pass it as sim.Config.Phases.
func NewSimPhases(reg *Registry) *PhaseProfiler {
	return NewPhaseProfiler(reg, "sim", SimPhaseStages...)
}

// NewReplayPhases builds the replay-pipeline profiler (stage indices
// PhaseReplay*). Pass it as replayer Options.Phases.
func NewReplayPhases(reg *Registry) *PhaseProfiler {
	return NewPhaseProfiler(reg, "replay", ReplayPhaseStages...)
}

// Pipeline returns the profiler's pipeline label ("" on nil).
func (p *PhaseProfiler) Pipeline() string {
	if p == nil {
		return ""
	}
	return p.pipeline
}

// Stages returns a copy of the stage vocabulary (nil on nil).
func (p *PhaseProfiler) Stages() []string {
	if p == nil {
		return nil
	}
	return append([]string(nil), p.stages...)
}

// phaseBase anchors the profiler's clock: reading it via time.Since stays on
// the runtime's monotonic clock (immune to wall-clock steps), which is the
// cheapest portable nanotime the stdlib offers.
var phaseBase = time.Now()

// phaseNowNs reads the monotonic clock in nanoseconds.
func phaseNowNs() int64 {
	//lint:ignore simtime phase timers measure wall-clock cost by design; durations feed write-only accumulators and exposition histograms, never simulation state or a seeded RNG stream
	return int64(time.Since(phaseBase))
}

// PhaseClock is one execution strand's mark chain: Begin stamps the chain's
// start, and each Mark closes the stage that just ran (crediting the time
// since the previous mark) while opening the next. Clocks are cheap values —
// take one per request loop or per round trip; concurrent strands each hold
// their own clock and meet only at the profiler's atomic accumulators.
//
// All methods are safe on a clock obtained from a nil profiler: they cost a
// pointer test and never read the clock, preserving the obs-off fast path.
type PhaseClock struct {
	p    *PhaseProfiler
	last int64
}

// Clock returns a mark-chain clock feeding p (inert when p is nil).
func (p *PhaseProfiler) Clock() PhaseClock { return PhaseClock{p: p} }

// Begin stamps the start of a mark chain.
func (c *PhaseClock) Begin() {
	if c == nil || c.p == nil {
		return
	}
	c.last = phaseNowNs()
}

// Mark credits the time since the previous mark (or Begin) to stage and
// advances the chain. Out-of-range stages advance the chain without
// crediting, so a mismatched profiler degrades to missing attribution rather
// than a panic on the hot path.
func (c *PhaseClock) Mark(stage int) {
	if c == nil || c.p == nil {
		return
	}
	now := phaseNowNs()
	if uint(stage) < uint(len(c.p.accum)) {
		c.p.accum[stage].Add(now - c.last)
	}
	c.last = now
}

// FlushEpoch drains the per-stage accumulators into the histograms: each
// stage with nonzero time this epoch records one observation of its seconds.
// Idle stages observe nothing (a zero would pollute the lowest bucket), and
// an all-idle flush is free. Nil-safe.
//
// Callers either bind the profiler to a flight recorder (BindRecorder), in
// which case flushes ride the recorder's epochs, or flush once at the end of
// a run — sim.Run does the latter unconditionally, which is a no-op when the
// recorder's Seal already drained the tail.
func (p *PhaseProfiler) FlushEpoch() {
	if p == nil {
		return
	}
	any := false
	for i := range p.accum {
		ns := p.accum[i].Swap(0)
		if ns <= 0 {
			continue
		}
		any = true
		p.flushed[i].Add(ns)
		p.hists[i].Observe(float64(ns) / 1e9)
	}
	if any {
		p.epochs.Add(1)
	}
}

// BindRecorder flushes the profiler on every recorder epoch, inside the
// snapshot, so the per-epoch stage seconds land in the same epoch's rings as
// every other series. Nil-safe on both sides.
func (p *PhaseProfiler) BindRecorder(rec *Recorder) {
	if p == nil || rec == nil {
		return
	}
	rec.OnEpochPre(func(float64) { p.FlushEpoch() })
}

// Epochs returns how many flushes recorded at least one stage (0 on nil).
func (p *PhaseProfiler) Epochs() int64 {
	if p == nil {
		return 0
	}
	return p.epochs.Load()
}

// PhaseStageSeconds is one stage's share of a Breakdown.
type PhaseStageSeconds struct {
	Stage    string
	Seconds  float64
	Fraction float64 // of the pipeline total (0 when the total is 0)
}

// Breakdown returns the cumulative per-stage attribution — flushed epochs
// plus the un-flushed residue — in stage order. Nil profilers return nil.
func (p *PhaseProfiler) Breakdown() []PhaseStageSeconds {
	if p == nil {
		return nil
	}
	out := make([]PhaseStageSeconds, len(p.stages))
	total := 0.0
	for i, st := range p.stages {
		ns := p.flushed[i].Load() + p.accum[i].Load()
		out[i] = PhaseStageSeconds{Stage: st, Seconds: float64(ns) / 1e9}
		total += out[i].Seconds
	}
	if total > 0 {
		for i := range out {
			out[i].Fraction = out[i].Seconds / total
		}
	}
	return out
}

// String renders the breakdown as a fixed-width table, dominant stage first
// ("" on nil) — the end-of-run report starcdn-sim and starcdn-replay print
// with -phases.
func (p *PhaseProfiler) String() string {
	if p == nil {
		return ""
	}
	bd := p.Breakdown()
	sort.SliceStable(bd, func(i, j int) bool { return bd[i].Seconds > bd[j].Seconds })
	var b strings.Builder
	fmt.Fprintf(&b, "phase breakdown (%s):\n", p.pipeline)
	fmt.Fprintf(&b, "  %-12s %12s %8s\n", "stage", "seconds", "share")
	total := 0.0
	for _, s := range bd {
		fmt.Fprintf(&b, "  %-12s %12.6f %7.1f%%\n", s.Stage, s.Seconds, s.Fraction*100)
		total += s.Seconds
	}
	fmt.Fprintf(&b, "  %-12s %12.6f\n", "total", total)
	return b.String()
}
