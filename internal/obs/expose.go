package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// WritePrometheus renders every registered series in the Prometheus text
// exposition format (# TYPE headers, cumulative _bucket/_sum/_count rows for
// histograms), sorted by series name so output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	lastTyped := ""
	for _, s := range r.Snapshot() {
		if s.Name != lastTyped {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Kind); err != nil {
				return err
			}
			lastTyped = s.Name
		}
		switch s.Kind {
		case "histogram":
			if err := writePromHistogram(w, s); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s%s %s\n",
				s.Name, s.LabelString(), formatFloat(s.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, s SeriesSnapshot) error {
	for i, cum := range s.HistCumulative {
		le := "+Inf"
		if i < len(s.HistBounds) {
			le = formatFloat(s.HistBounds[i])
		}
		labels := append(append([]Label(nil), s.Labels...), L("le", le))
		snap := SeriesSnapshot{Labels: labels}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", s.Name, snap.LabelString(), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", s.Name, s.LabelString(), formatFloat(s.HistSum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", s.Name, s.LabelString(), s.HistCount)
	return err
}

// formatFloat renders a metric value the way Prometheus clients do: integral
// values without a decimal point, everything else in shortest-round-trip
// form.
func formatFloat(x float64) string {
	if x == float64(int64(x)) {
		return strconv.FormatInt(int64(x), 10)
	}
	return strconv.FormatFloat(x, 'g', -1, 64)
}

// jsonHistogram is the JSON exposition shape of one histogram series.
type jsonHistogram struct {
	Bounds     []float64 `json:"bounds"`
	Cumulative []int64   `json:"cumulative"`
	Count      int64     `json:"count"`
	Sum        float64   `json:"sum"`
}

// WriteJSON renders the registry as a flat expvar-style JSON object keyed by
// the canonical series string (name{labels}); counters and gauges map to
// numbers, histograms to {bounds, cumulative, count, sum} objects. Keys are
// emitted in sorted order.
func (r *Registry) WriteJSON(w io.Writer) error {
	snaps := r.Snapshot()
	out := make(map[string]any, len(snaps))
	for _, s := range snaps {
		key := s.Name + s.LabelString()
		if s.Kind == "histogram" {
			out[key] = jsonHistogram{
				Bounds:     s.HistBounds,
				Cumulative: s.HistCumulative,
				Count:      s.HistCount,
				Sum:        s.HistSum,
			}
		} else {
			out[key] = s.Value
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// encoding/json sorts map keys, keeping the exposition deterministic.
	return enc.Encode(out)
}
