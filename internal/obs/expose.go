package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"

	"starcdn/internal/obs/sketch"
)

// WritePrometheus renders every registered series in the Prometheus text
// exposition format (# TYPE headers, cumulative _bucket/_sum/_count rows for
// histograms), sorted by series name so output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	lastTyped := ""
	for _, s := range r.Snapshot() {
		if s.Name != lastTyped {
			if err := writePromTypeLines(w, s); err != nil {
				return err
			}
			lastTyped = s.Name
		}
		switch s.Kind {
		case "histogram":
			if err := writePromHistogram(w, s); err != nil {
				return err
			}
		case "topk":
			if err := writePromTopK(w, s); err != nil {
				return err
			}
		case "sketch":
			if err := writePromSketch(w, s); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s%s %s\n",
				s.Name, s.LabelString(), formatFloat(s.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// writePromTypeLines emits the # TYPE header(s) for a series name. Top-K
// and sketch instruments expose derived families (name_topk, name_q,
// name_samples) rather than a row under the bare name, so their headers
// describe those families in Prometheus-native kinds.
func writePromTypeLines(w io.Writer, s SeriesSnapshot) error {
	switch s.Kind {
	case "topk":
		_, err := fmt.Fprintf(w, "# TYPE %s_topk gauge\n# TYPE %s_samples counter\n", s.Name, s.Name)
		return err
	case "sketch":
		_, err := fmt.Fprintf(w, "# TYPE %s_q gauge\n# TYPE %s_samples counter\n", s.Name, s.Name)
		return err
	default:
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Kind)
		return err
	}
}

// writePromTopK renders a top-K instrument as rank-indexed gauge rows
// (bounded at promTopKRanks) plus the stream weight. Object keys stay out
// of the label set — the rank is the only added dimension — so scrape
// cardinality is fixed no matter how many distinct keys the stream holds;
// the full keyed entries live on /popularity.json.
func writePromTopK(w io.Writer, s SeriesSnapshot) error {
	for i, e := range s.TopK {
		if i >= promTopKRanks {
			break
		}
		labels := append(append([]Label(nil), s.Labels...), L("rank", strconv.Itoa(i+1)))
		snap := SeriesSnapshot{Labels: labels}
		if _, err := fmt.Fprintf(w, "%s_topk%s %d\n", s.Name, snap.LabelString(), e.Count); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_samples%s %d\n", s.Name, s.LabelString(), s.TopKN)
	return err
}

// writePromSketch renders a quantile sketch as one gauge row per
// SketchQuantiles entry plus the sample count.
func writePromSketch(w io.Writer, s SeriesSnapshot) error {
	for i, q := range SketchQuantiles {
		if i >= len(s.SketchQ) {
			break
		}
		v := s.SketchQ[i]
		if math.IsNaN(v) {
			continue // empty sketch: no quantile rows, just the zero count
		}
		labels := append(append([]Label(nil), s.Labels...), L("q", formatFloat(q)))
		snap := SeriesSnapshot{Labels: labels}
		if _, err := fmt.Fprintf(w, "%s_q%s %s\n", s.Name, snap.LabelString(), formatFloat(v)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_samples%s %d\n", s.Name, s.LabelString(), s.SketchCount)
	return err
}

func writePromHistogram(w io.Writer, s SeriesSnapshot) error {
	for i, cum := range s.HistCumulative {
		le := "+Inf"
		if i < len(s.HistBounds) {
			le = formatFloat(s.HistBounds[i])
		}
		labels := append(append([]Label(nil), s.Labels...), L("le", le))
		snap := SeriesSnapshot{Labels: labels}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", s.Name, snap.LabelString(), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", s.Name, s.LabelString(), formatFloat(s.HistSum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", s.Name, s.LabelString(), s.HistCount)
	return err
}

// formatFloat renders a metric value the way Prometheus clients do: integral
// values without a decimal point, everything else in shortest-round-trip
// form.
func formatFloat(x float64) string {
	if x == float64(int64(x)) {
		return strconv.FormatInt(int64(x), 10)
	}
	return strconv.FormatFloat(x, 'g', -1, 64)
}

// jsonHistogram is the JSON exposition shape of one histogram series.
type jsonHistogram struct {
	Bounds     []float64 `json:"bounds"`
	Cumulative []int64   `json:"cumulative"`
	Count      int64     `json:"count"`
	Sum        float64   `json:"sum"`
}

// jsonTopK is the JSON exposition shape of one top-K series: the full
// ranked entries, keys and exemplars included (the detail the bounded
// Prometheus rows deliberately omit).
type jsonTopK struct {
	Kind    string      `json:"kind"` // always "topk"
	N       int64       `json:"n"`
	Entries []TopKEntry `json:"entries"`
}

// jsonSketch is the JSON exposition shape of one quantile-sketch series.
// Quantiles maps formatted quantile → estimate; Exemplars carries the trace
// exemplar nearest each exposed quantile (omitted when never sampled). NaN
// min/max (empty sketch) serialise as null.
type jsonSketch struct {
	Kind      string                     `json:"kind"` // always "sketch"
	Count     int64                      `json:"count"`
	Sum       float64                    `json:"sum"`
	Min       *float64                   `json:"min"`
	Max       *float64                   `json:"max"`
	Quantiles map[string]float64         `json:"quantiles"`
	Exemplars map[string]sketch.Exemplar `json:"exemplars,omitempty"`
}

func jsonSketchOf(s SeriesSnapshot) jsonSketch {
	out := jsonSketch{
		Kind:      "sketch",
		Count:     s.SketchCount,
		Sum:       s.SketchSum,
		Quantiles: make(map[string]float64, len(s.SketchQ)),
	}
	if !math.IsNaN(s.SketchMin) {
		min, max := s.SketchMin, s.SketchMax
		out.Min, out.Max = &min, &max
	}
	for i, q := range SketchQuantiles {
		if i >= len(s.SketchQ) || math.IsNaN(s.SketchQ[i]) {
			continue
		}
		out.Quantiles[formatFloat(q)] = s.SketchQ[i]
		if i < len(s.SketchExemplars) && s.SketchExemplars[i].Valid() {
			if out.Exemplars == nil {
				out.Exemplars = make(map[string]sketch.Exemplar)
			}
			out.Exemplars[formatFloat(q)] = s.SketchExemplars[i]
		}
	}
	return out
}

// WriteJSON renders the registry as a flat expvar-style JSON object keyed by
// the canonical series string (name{labels}); counters and gauges map to
// numbers, histograms to {bounds, cumulative, count, sum} objects. Keys are
// emitted in sorted order.
func (r *Registry) WriteJSON(w io.Writer) error {
	snaps := r.Snapshot()
	out := make(map[string]any, len(snaps))
	for _, s := range snaps {
		key := s.Name + s.LabelString()
		switch s.Kind {
		case "histogram":
			out[key] = jsonHistogram{
				Bounds:     s.HistBounds,
				Cumulative: s.HistCumulative,
				Count:      s.HistCount,
				Sum:        s.HistSum,
			}
		case "topk":
			out[key] = jsonTopK{Kind: "topk", N: s.TopKN, Entries: s.TopK}
		case "sketch":
			out[key] = jsonSketchOf(s)
		default:
			out[key] = s.Value
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// encoding/json sorts map keys, keeping the exposition deterministic.
	return enc.Encode(out)
}
