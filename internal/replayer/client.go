package replayer

import (
	"fmt"
	"net"
	"sync"

	"starcdn/internal/cache"
)

// Client issues cache operations to satellite servers, pooling one TCP
// connection per address.
type Client struct {
	mu    sync.Mutex
	conns map[string]net.Conn
}

// NewClient returns an empty client.
func NewClient() *Client {
	return &Client{conns: make(map[string]net.Conn)}
}

// conn returns a pooled connection to addr, dialing on first use.
func (c *Client) conn(addr string) (net.Conn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if conn, ok := c.conns[addr]; ok {
		return conn, nil
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("replayer: dial %s: %w", addr, err)
	}
	c.conns[addr] = conn
	return conn, nil
}

// drop removes a broken connection from the pool. The close error is
// deliberately discarded: the connection is already known to be broken.
func (c *Client) drop(addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if conn, ok := c.conns[addr]; ok {
		_ = conn.Close()
		delete(c.conns, addr)
	}
}

// Close closes all pooled connections, returning the first close error.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var first error
	for addr, conn := range c.conns {
		if err := conn.Close(); err != nil && first == nil {
			first = err
		}
		delete(c.conns, addr)
	}
	return first
}

// roundTrip sends one request frame and reads the response. The per-address
// connection is used by one request at a time; callers needing concurrency
// use one Client per worker.
func (c *Client) roundTrip(addr string, op Op, obj cache.ObjectID, size int64) (Status, error) {
	conn, err := c.conn(addr)
	if err != nil {
		return StatusError, err
	}
	if err := writeRequest(conn, op, obj, size); err != nil {
		c.drop(addr)
		return StatusError, err
	}
	st, _, _, err := readResponse(conn)
	if err != nil {
		c.drop(addr)
		return StatusError, err
	}
	return st, nil
}

// Get performs a lookup (with recency update) and reports a hit.
func (c *Client) Get(addr string, obj cache.ObjectID, size int64) (bool, error) {
	st, err := c.roundTrip(addr, OpGet, obj, size)
	if err != nil {
		return false, err
	}
	return st == StatusHit, nil
}

// Contains peeks without updating recency.
func (c *Client) Contains(addr string, obj cache.ObjectID) (bool, error) {
	st, err := c.roundTrip(addr, OpContains, obj, 0)
	if err != nil {
		return false, err
	}
	return st == StatusHit, nil
}

// Admit inserts an object into the remote cache.
func (c *Client) Admit(addr string, obj cache.ObjectID, size int64) error {
	st, err := c.roundTrip(addr, OpAdmit, obj, size)
	if err != nil {
		return err
	}
	if st != StatusOK {
		return fmt.Errorf("replayer: admit rejected with status %d", st)
	}
	return nil
}

// Stats fetches the remote server's (requests, hits) counters.
func (c *Client) Stats(addr string) (requests, hits uint64, err error) {
	conn, err := c.conn(addr)
	if err != nil {
		return 0, 0, err
	}
	if err := writeRequest(conn, OpStats, 0, 0); err != nil {
		c.drop(addr)
		return 0, 0, err
	}
	st, a, b, err := readResponse(conn)
	if err != nil {
		c.drop(addr)
		return 0, 0, err
	}
	if st != StatusOK {
		return 0, 0, fmt.Errorf("replayer: stats status %d", st)
	}
	return a, b, nil
}
