package replayer

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"sync"
	"syscall"
	"time"

	"starcdn/internal/cache"
	"starcdn/internal/obs"
	"starcdn/internal/shed"
)

// Dialer opens a TCP connection to addr. timeout <= 0 means the operating
// system default. Injectable so fault injection (and tests) can interpose.
type Dialer func(addr string, timeout time.Duration) (net.Conn, error)

// defaultDial is the production dialer.
func defaultDial(addr string, timeout time.Duration) (net.Conn, error) {
	if timeout > 0 {
		return net.DialTimeout("tcp", addr, timeout)
	}
	return net.Dial("tcp", addr)
}

// ClientOptions configures a fault-tolerant client.
type ClientOptions struct {
	// DialTimeout caps each dial attempt (0 = OS default).
	DialTimeout time.Duration
	// IOTimeout is the per-frame read/write deadline (0 = none). Every
	// round trip arms the deadline anew, so one stalled server cannot hang
	// a replay for longer than IOTimeout per attempt.
	IOTimeout time.Duration
	// Retry bounds reconnect attempts; the zero value performs exactly one
	// attempt (fail-fast).
	Retry RetryPolicy
	// Seed seeds the backoff jitter stream.
	Seed int64
	// Dial overrides the connection factory (nil = real TCP dials).
	Dial Dialer
	// Obs, when non-nil, registers the client-side series: attempt/retry/
	// failure counters and backoff/frame-latency histograms under the
	// starcdn_client_* names.
	Obs *obs.Registry
	// Tracer, when non-nil together with Propagate, receives client-side
	// child spans for retries (one span per backoff, parented under the
	// propagated hop span).
	Tracer *obs.Tracer
	// Propagate enables cross-process trace propagation: the client sends an
	// OpHello once per connection and, when the server grants CapTrace,
	// prefixes sampled request frames with OpTraceContext extension frames.
	// Servers that answer the hello with an error (protocol v1) downgrade
	// the connection to plain frames — old servers interoperate unchanged.
	Propagate bool
	// Shed requests CapShed in the per-connection hello: the client
	// declares it understands StatusShed responses, which it maps to
	// shed.ErrShed without retrying (the rejection is load control — a
	// retry would add the very load being shed). Against older servers the
	// hello degrades gracefully and shed rejections arrive as the familiar
	// StatusError terminal faults.
	Shed bool
	// Phases, when non-nil, attributes each round trip's wall-clock cost to
	// the replay stages (dial+hello, frame write, frame read, retry
	// backoff). Build it with obs.NewReplayPhases — the client marks the
	// obs.PhaseReplay* stage indices. Like Obs, enabling it cannot change
	// replay behaviour.
	Phases *obs.PhaseProfiler
}

// clientObs holds the client's pre-resolved instruments. A nil *clientObs is
// the disabled configuration; the wall-clock frame timer is only armed when
// observability is on, so the no-op path never calls time.Now.
type clientObs struct {
	attempts  *obs.Counter
	retries   *obs.Counter
	failures  *obs.Counter
	backoffMs *obs.Histogram
	frameMs   *obs.Histogram
	// rejected counts terminal rejections by cause: an overload-control
	// shed (the server said no on purpose), an exhausted deadline, or a
	// refused dial (dead server). Retried-then-recovered attempts are
	// retries, not rejections.
	rejShed     *obs.Counter
	rejDeadline *obs.Counter
	rejRefused  *obs.Counter
}

func newClientObs(reg *obs.Registry) *clientObs {
	if reg == nil {
		return nil
	}
	return &clientObs{
		attempts:    reg.Counter("starcdn_client_attempts_total"),
		retries:     reg.Counter("starcdn_client_retries_total"),
		failures:    reg.Counter("starcdn_client_failures_total"),
		backoffMs:   reg.Histogram("starcdn_client_backoff_ms", nil),
		frameMs:     reg.Histogram("starcdn_client_frame_ms", nil),
		rejShed:     reg.Counter("starcdn_client_rejected_total", obs.L("reason", "shed")),
		rejDeadline: reg.Counter("starcdn_client_rejected_total", obs.L("reason", "deadline")),
		rejRefused:  reg.Counter("starcdn_client_rejected_total", obs.L("reason", "refused")),
	}
}

// recordTerminal classifies a round trip's terminal failure for the
// rejected_total counters (nil-safe). Stalls surface as deadline timeouts,
// dead servers as refused dials; other causes (resets, truncation) stay in
// the catch-all failures counter only.
func (o *clientObs) recordTerminal(err error) {
	if o == nil {
		return
	}
	o.failures.Inc()
	var ne net.Error
	switch {
	case errors.As(err, &ne) && ne.Timeout():
		o.rejDeadline.Inc()
	case errors.Is(err, syscall.ECONNREFUSED):
		o.rejRefused.Inc()
	}
}

// Client issues cache operations to satellite servers, pooling one TCP
// connection per address.
//
// Locking is two-level: the Client mutex guards only the pool map and is
// never held across a dial or a round trip; each address has its own lock
// that serialises dialing and frame exchange on that connection. A stalled
// or dead server therefore delays only operations against that server —
// traffic to every other satellite proceeds unimpeded.
type Client struct {
	mu    sync.Mutex
	conns map[string]*poolEntry

	dialTimeout time.Duration
	ioTimeout   time.Duration
	retry       RetryPolicy
	dial        Dialer
	obs         *clientObs
	tracer      *obs.Tracer
	propagate   bool
	shed        bool
	phases      *obs.PhaseProfiler

	rngMu sync.Mutex
	rng   *rand.Rand // backoff jitter
}

// poolEntry is one address's pooled connection plus its serialising lock.
type poolEntry struct {
	mu   sync.Mutex
	conn net.Conn
	// traceOK records the outcome of the per-connection hello negotiation:
	// true once the server granted CapTrace. Reset when the connection drops
	// (the revived server behind the address may speak a different version).
	traceOK bool
	// shedOK is the CapShed half of the same negotiation: true once the
	// server granted shed responses on this connection.
	shedOK bool
	// scratch is the frame marshal buffer for this connection, guarded by mu
	// like the conn it serves. Reusing it keeps the per-request exchange
	// allocation-free (see writeFrameBuf).
	scratch [frameSize]byte
}

// NewClient returns a fail-fast client: no deadlines, no retries — the
// legacy behaviour, appropriate when the cluster is known healthy and any
// error should abort the replay.
func NewClient() *Client {
	return NewClientOpts(ClientOptions{})
}

// NewClientOpts returns a client with fault-handling configured.
func NewClientOpts(o ClientOptions) *Client {
	d := o.Dial
	if d == nil {
		d = defaultDial
	}
	return &Client{
		conns:       make(map[string]*poolEntry),
		dialTimeout: o.DialTimeout,
		ioTimeout:   o.IOTimeout,
		retry:       o.Retry,
		dial:        d,
		obs:         newClientObs(o.Obs),
		tracer:      o.Tracer,
		propagate:   o.Propagate,
		shed:        o.Shed,
		phases:      o.Phases,
		rng:         rand.New(rand.NewSource(o.Seed)),
	}
}

// entry returns the pool slot for addr, creating it if needed. Only the map
// access is under the client mutex; dialing happens under the entry lock.
func (c *Client) entry(addr string) *poolEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.conns[addr]
	if !ok {
		e = &poolEntry{} //lint:ignore hotalloc one pool entry per server address for the client's lifetime
		c.conns[addr] = e
	}
	return e
}

// drop closes and forgets a broken connection. The close error is
// deliberately discarded: the connection is already known to be broken.
func (c *Client) drop(addr string) {
	e := c.entry(addr)
	e.mu.Lock()
	e.dropLocked()
	e.mu.Unlock()
}

// dropLocked severs the pooled connection; callers hold e.mu.
func (e *poolEntry) dropLocked() {
	if e.conn != nil {
		_ = e.conn.Close()
		e.conn = nil
	}
	e.traceOK = false
	e.shedOK = false
}

// Close closes all pooled connections, returning the first close error.
func (c *Client) Close() error {
	c.mu.Lock()
	entries := make([]*poolEntry, 0, len(c.conns))
	for _, e := range c.conns {
		entries = append(entries, e)
	}
	c.conns = make(map[string]*poolEntry)
	c.mu.Unlock()
	var first error
	for _, e := range entries {
		e.mu.Lock()
		if e.conn != nil {
			if err := e.conn.Close(); err != nil && first == nil {
				first = err
			}
			e.conn = nil
		}
		e.mu.Unlock()
	}
	return first
}

// jitter draws one backoff jitter value thread-safely.
func (c *Client) backoff(attempt int) time.Duration {
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	return c.retry.Backoff(attempt, c.rng)
}

// roundTrip sends one request frame and reads the response, retrying per the
// client's RetryPolicy with jittered backoff. Each attempt dials (if the
// pool has no live connection), arms the I/O deadline, and exchanges one
// frame; any failure severs the pooled connection so the next attempt
// reconnects from scratch — which also transparently follows a satellite
// server that was killed and revived on a new address... as long as the
// caller re-resolves the address, which Replay does per request.
//
// A non-nil sampled sc rides ahead of the request frame as a trace-context
// extension (when the connection negotiated CapTrace) and each backoff
// emits a "retry" child span under sc.Parent, so a trace records not just
// where a request was served but every stall it survived on the way.
func (c *Client) roundTrip(addr string, op Op, obj cache.ObjectID, size int64, sc *obs.SpanContext) (Status, uint64, uint64, error) {
	var lastErr error
	for attempt := 0; attempt < c.retry.attempts(); attempt++ {
		if attempt > 0 {
			d := c.backoff(attempt)
			if c.obs != nil {
				c.obs.retries.Inc()
				c.obs.backoffMs.Observe(float64(d) / float64(time.Millisecond))
			}
			c.emitRetrySpan(sc, attempt, d, lastErr)
			rc := c.phases.Clock()
			rc.Begin()
			time.Sleep(d)
			rc.Mark(obs.PhaseReplayRetry)
		}
		if c.obs != nil {
			c.obs.attempts.Inc()
		}
		st, a, b, err := c.tryOnce(addr, op, obj, size, sc)
		if err == nil {
			// A shed is a deliberate answer, not a transport fault: the
			// retry loop must never re-offer load the server just refused.
			if st == StatusShed && c.obs != nil {
				c.obs.rejShed.Inc()
			}
			return st, a, b, nil
		}
		lastErr = err
	}
	c.obs.recordTerminal(lastErr)
	return StatusError, 0, 0, lastErr
}

// emitRetrySpan records one backoff as a child span of the propagated hop.
func (c *Client) emitRetrySpan(sc *obs.SpanContext, attempt int, backoff time.Duration, cause error) {
	if c.tracer == nil || sc == nil || !sc.Sampled {
		return
	}
	span := &obs.Span{ //lint:ignore hotalloc retry span is built only on the sampled retry path, which already paid a backoff sleep
		TraceID: sc.TraceString(),
		SpanID:  obs.SpanIDString(c.tracer.NewSpanID()),
		Parent:  obs.SpanIDString(sc.Parent),
		Proc:    "client",
		Kind:    "retry",
		WallMs:  float64(backoff) / float64(time.Millisecond),
	}
	if cause != nil {
		span.Source = "attempt-" + strconv.Itoa(attempt) //lint:ignore hotalloc label built only for sampled retries, orders of magnitude rarer than frames
	}
	c.tracer.Emit(span)
}

// tryOnce performs a single attempt under the per-address lock.
func (c *Client) tryOnce(addr string, op Op, obj cache.ObjectID, size int64, sc *obs.SpanContext) (Status, uint64, uint64, error) {
	e := c.entry(addr)
	e.mu.Lock()
	defer e.mu.Unlock()
	// The mark chain is a stack value per attempt: tryOnce runs concurrently
	// across addresses, and the clocks only meet at the profiler's atomics.
	pc := c.phases.Clock()
	pc.Begin()
	if e.conn == nil {
		conn, err := c.dial(addr, c.dialTimeout)
		if err != nil {
			return StatusError, 0, 0, fmt.Errorf("replayer: dial %s: %w", addr, err)
		}
		e.conn = conn
		if c.propagate || c.shed {
			if err := c.helloLocked(e); err != nil {
				e.dropLocked()
				return StatusError, 0, 0, err
			}
		}
		pc.Mark(obs.PhaseReplayDial)
	}
	if c.ioTimeout > 0 {
		if err := e.conn.SetDeadline(time.Now().Add(c.ioTimeout)); err != nil {
			e.dropLocked()
			return StatusError, 0, 0, err
		}
	}
	var frameStart time.Time
	if c.obs != nil {
		frameStart = time.Now()
	}
	if e.traceOK && sc != nil && sc.Sampled {
		if err := writeTraceContext(e.conn, *sc); err != nil {
			e.dropLocked()
			return StatusError, 0, 0, err
		}
	}
	if err := writeRequest(e.conn, &e.scratch, op, obj, size); err != nil {
		e.dropLocked()
		return StatusError, 0, 0, err
	}
	pc.Mark(obs.PhaseReplayWrite)
	st, a, b, err := readResponse(e.conn, &e.scratch)
	if err != nil {
		e.dropLocked()
		return StatusError, 0, 0, err
	}
	pc.Mark(obs.PhaseReplayRead)
	if c.obs != nil {
		c.obs.frameMs.Observe(float64(time.Since(frameStart)) / float64(time.Millisecond))
	}
	return st, a, b, nil
}

// helloLocked negotiates protocol extensions on a freshly dialed connection;
// callers hold e.mu. The requested capability bits follow the client's
// configuration — CapTrace when propagating, CapShed when shed-aware. A
// modern server answers StatusOK with the granted capability bits; a v1
// server answers its unknown-op StatusError, which downgrades the connection
// to plain version-1 frames (traceOK and shedOK stay false). Only transport
// errors are fatal — version disagreement never is.
func (c *Client) helloLocked(e *poolEntry) error {
	if c.ioTimeout > 0 {
		if err := e.conn.SetDeadline(time.Now().Add(c.ioTimeout)); err != nil {
			return err
		}
	}
	var want uint64
	if c.propagate {
		want |= CapTrace
	}
	if c.shed {
		want |= CapShed
	}
	if err := writeFrameBuf(e.conn, &e.scratch, uint8(OpHello), ProtocolVersion, want); err != nil {
		return fmt.Errorf("replayer: hello: %w", err)
	}
	st, _, caps, err := readResponse(e.conn, &e.scratch)
	if err != nil {
		return fmt.Errorf("replayer: hello: %w", err)
	}
	e.traceOK = st == StatusOK && caps&CapTrace != 0
	e.shedOK = st == StatusOK && caps&CapShed != 0
	return nil
}

// Get performs a lookup (with recency update) and reports a hit.
func (c *Client) Get(addr string, obj cache.ObjectID, size int64) (bool, error) {
	return c.GetCtx(addr, obj, size, nil)
}

// GetCtx is Get with an optional propagated trace context. A server-side
// shed surfaces as shed.ErrShed — already terminal (no retry happened) and
// distinguishable from transport faults with errors.Is.
func (c *Client) GetCtx(addr string, obj cache.ObjectID, size int64, sc *obs.SpanContext) (bool, error) {
	st, _, _, err := c.roundTrip(addr, OpGet, obj, size, sc)
	if err != nil {
		return false, err
	}
	if st == StatusShed {
		return false, shed.ErrShed
	}
	return st == StatusHit, nil
}

// Contains peeks without updating recency.
func (c *Client) Contains(addr string, obj cache.ObjectID) (bool, error) {
	return c.ContainsCtx(addr, obj, nil)
}

// ContainsCtx is Contains with an optional propagated trace context. Sheds
// surface as shed.ErrShed, as in GetCtx.
func (c *Client) ContainsCtx(addr string, obj cache.ObjectID, sc *obs.SpanContext) (bool, error) {
	st, _, _, err := c.roundTrip(addr, OpContains, obj, 0, sc)
	if err != nil {
		return false, err
	}
	if st == StatusShed {
		return false, shed.ErrShed
	}
	return st == StatusHit, nil
}

// Admit inserts an object into the remote cache.
func (c *Client) Admit(addr string, obj cache.ObjectID, size int64) error {
	return c.AdmitCtx(addr, obj, size, nil)
}

// AdmitCtx is Admit with an optional propagated trace context. Sheds surface
// as shed.ErrShed, as in GetCtx.
func (c *Client) AdmitCtx(addr string, obj cache.ObjectID, size int64, sc *obs.SpanContext) error {
	st, _, _, err := c.roundTrip(addr, OpAdmit, obj, size, sc)
	if err != nil {
		return err
	}
	if st == StatusShed {
		return shed.ErrShed
	}
	if st != StatusOK {
		return fmt.Errorf("replayer: admit rejected with status %d", st)
	}
	return nil
}

// ShedStage queries the server's active overload-control stage and burn
// rate. Requires ClientOptions.Shed and a server that granted CapShed; older
// servers answer StatusError, which is returned as an error.
func (c *Client) ShedStage(addr string) (shed.Stage, float64, error) {
	st, a, b, err := c.roundTrip(addr, OpShed, 0, 0, nil)
	if err != nil {
		return shed.StageNormal, 0, err
	}
	if st != StatusOK {
		return shed.StageNormal, 0, fmt.Errorf("replayer: shed query status %d", st)
	}
	return shed.Stage(a), float64(b) / 1e6, nil
}

// Stats fetches the remote server's (requests, hits) counters.
func (c *Client) Stats(addr string) (requests, hits uint64, err error) {
	st, a, b, err := c.roundTrip(addr, OpStats, 0, 0, nil)
	if err != nil {
		return 0, 0, err
	}
	if st != StatusOK {
		return 0, 0, fmt.Errorf("replayer: stats status %d", st)
	}
	return a, b, nil
}
