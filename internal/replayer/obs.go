package replayer

import (
	"starcdn/internal/obs"
	"starcdn/internal/sim"
)

// replayObs holds the replay-level instruments: request and byte counters
// per service source, resolved once per replay. A nil *replayObs is the
// disabled configuration and records nothing.
//
// The counters are atomic, so ReplayConcurrent's per-location workers share
// one replayObs without coordination.
type replayObs struct {
	bySource []*obs.Counter // indexed by sim.Source
	bytes    []*obs.Counter
	// served/hits aggregate across sources, the numerator/denominator pair
	// a hit-rate SLO evaluates (ratio objectives need single series).
	served *obs.Counter
	hits   *obs.Counter
}

func newReplayObs(reg *obs.Registry) *replayObs {
	if reg == nil {
		return nil
	}
	srcs := sim.Sources()
	ro := &replayObs{
		bySource: make([]*obs.Counter, len(srcs)),
		bytes:    make([]*obs.Counter, len(srcs)),
		served:   reg.Counter("starcdn_replay_served_total"),
		hits:     reg.Counter("starcdn_replay_hits_total"),
	}
	for _, s := range srcs {
		l := obs.L("source", s.String())
		ro.bySource[s] = reg.Counter("starcdn_replay_requests_total", l)
		ro.bytes[s] = reg.Counter("starcdn_replay_bytes_total", l)
	}
	return ro
}

// record mirrors one replayed request into the live counters.
func (ro *replayObs) record(src sim.Source, size int64) {
	if ro == nil || !src.Valid() {
		return
	}
	ro.bySource[src].Inc()
	ro.bytes[src].Add(size)
	ro.served.Inc()
	if src.Hit() {
		ro.hits.Inc()
	}
}
