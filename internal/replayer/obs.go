package replayer

import (
	"starcdn/internal/cache"
	"starcdn/internal/obs"
	"starcdn/internal/obs/sketch"
	"starcdn/internal/orbit"
	"starcdn/internal/sim"
	"starcdn/internal/trace"
)

// replayObs holds the replay-level instruments: request and byte counters
// per service source, resolved once per replay. A nil *replayObs is the
// disabled configuration and records nothing.
//
// The counters are atomic, so ReplayConcurrent's per-location workers share
// one replayObs without coordination.
type replayObs struct {
	bySource []*obs.Counter // indexed by sim.Source
	bytes    []*obs.Counter
	// served/hits aggregate across sources, the numerator/denominator pair
	// a hit-rate SLO evaluates (ratio objectives need single series).
	served *obs.Counter
	hits   *obs.Counter
	// pop is the opt-in streaming-sketch telemetry (Options.Sketches); nil
	// keeps the metrics-only fast path.
	pop *popObs
}

func newReplayObs(reg *obs.Registry, sketches bool) *replayObs {
	if reg == nil {
		return nil
	}
	srcs := sim.Sources()
	ro := &replayObs{
		bySource: make([]*obs.Counter, len(srcs)),
		bytes:    make([]*obs.Counter, len(srcs)),
		served:   reg.Counter("starcdn_replay_served_total"),
		hits:     reg.Counter("starcdn_replay_hits_total"),
	}
	for _, s := range srcs {
		l := obs.L("source", s.String())
		ro.bySource[s] = reg.Counter("starcdn_replay_requests_total", l)
		ro.bytes[s] = reg.Counter("starcdn_replay_bytes_total", l)
	}
	if sketches {
		ro.pop = newPopObs(reg)
	}
	return ro
}

// sketching reports whether the sketch instruments are live, so callers can
// skip computing sketch-only inputs (bucket, trace ID) on the disabled path.
func (ro *replayObs) sketching() bool { return ro != nil && ro.pop != nil }

// recordPop feeds one request into the sketch telemetry (nil-safe no-op when
// sketches are off). sat < 0 means no satellite served the request; bucket <
// 0 means no consistent-hash bucket; a NaN wall latency means the request
// never crossed the wire (degraded/shed before contact) and is skipped by
// the quantile sketch.
func (ro *replayObs) recordPop(r *trace.Request, req int64, sat orbit.SatID,
	bucket int, wallLatencyMs float64, traceID string) {
	if ro == nil || ro.pop == nil {
		return
	}
	ro.pop.record(r, req, sat, bucket, wallLatencyMs, traceID)
}

// popObs holds the replay-side streaming-sketch instruments: the same top-K
// popularity summaries sim.Run builds (same names, same integer keys, same
// update rule — which is what makes per-seed top-K parity between the two
// pipelines an exact comparison) plus a wall-clock latency quantile sketch
// for requests actually served over TCP.
type popObs struct {
	objects *obs.TopK
	sats    *obs.TopK
	buckets *obs.TopK
	latency *obs.Sketch
}

func newPopObs(reg *obs.Registry) *popObs {
	po := &popObs{
		objects: reg.TopK("starcdn_popularity_objects", 0),
		sats:    reg.TopK("starcdn_popularity_sats", 0),
		buckets: reg.TopK("starcdn_popularity_buckets", 0),
		latency: reg.Sketch("starcdn_sketch_replay_wall_ms", 0),
	}
	po.objects.SetNamer(popObjectNamer)
	po.sats.SetNamer(popSatNamer)
	po.buckets.SetNamer(popBucketNamer)
	return po
}

// The popularity top-Ks are keyed by integer identity and named lazily at
// exposition — sharing sim's renderers keeps cross-pipeline top-K parity a
// straight entry comparison.
func popObjectNamer(id uint64) string { return sim.PopObjectKey(cache.ObjectID(id)) }
func popSatNamer(id uint64) string    { return sim.PopSatKey(orbit.SatID(id)) }
func popBucketNamer(id uint64) string { return sim.PopBucketKey(int(id)) }

func (po *popObs) record(r *trace.Request, req int64, sat orbit.SatID,
	bucket int, wallLatencyMs float64, traceID string) {
	ex := sketch.Exemplar{TraceID: traceID, Req: req, Value: float64(r.Size)}
	po.objects.ObserveIDEx(uint64(r.Object), 1, ex)
	if bucket >= 0 {
		po.buckets.ObserveIDEx(uint64(bucket), 1, ex)
	}
	if sat >= 0 {
		po.sats.ObserveIDEx(uint64(sat), 1, ex)
	}
	// NaN (no wire contact) is ignored by the sketch.
	po.latency.ObserveEx(wallLatencyMs,
		sketch.Exemplar{TraceID: traceID, Req: req, Value: wallLatencyMs})
}

// mergeShard folds one worker's single-owner shard into the shared
// instruments. ReplayConcurrent calls this at segment barriers in location
// order, making the merged summaries independent of worker scheduling.
func (po *popObs) mergeShard(ps *popShard) {
	if po == nil || ps == nil {
		return
	}
	po.objects.MergeShard(ps.objects)
	po.sats.MergeShard(ps.sats)
	po.buckets.MergeShard(ps.buckets)
	po.latency.MergeQuantile(ps.latency)
}

// popShard is the single-owner per-worker form of popObs: each concurrent
// worker owns one, records into it without cross-worker contention (the
// summaries self-lock, so the owner pays uncontended locks), and hands it to
// popObs.mergeShard at the next segment barrier (then reset for reuse).
type popShard struct {
	objects *obs.TopKShard
	sats    *obs.TopKShard
	buckets *obs.TopKShard
	latency *sketch.Quantile
}

func newPopShard() *popShard {
	ps := &popShard{
		objects: obs.NewTopKShard(0),
		sats:    obs.NewTopKShard(0),
		buckets: obs.NewTopKShard(0),
		latency: sketch.NewQuantile(0, 0),
	}
	ps.objects.SetNamer(popObjectNamer)
	ps.sats.SetNamer(popSatNamer)
	ps.buckets.SetNamer(popBucketNamer)
	return ps
}

// record is popObs.record against the single-owner shard.
func (ps *popShard) record(r *trace.Request, req int64, sat orbit.SatID,
	bucket int, wallLatencyMs float64, traceID string) {
	if ps == nil {
		return
	}
	ex := sketch.Exemplar{TraceID: traceID, Req: req, Value: float64(r.Size)}
	ps.objects.ObserveIDEx(uint64(r.Object), 1, ex)
	if bucket >= 0 {
		ps.buckets.ObserveIDEx(uint64(bucket), 1, ex)
	}
	if sat >= 0 {
		ps.sats.ObserveIDEx(uint64(sat), 1, ex)
	}
	ps.latency.ObserveEx(wallLatencyMs,
		sketch.Exemplar{TraceID: traceID, Req: req, Value: wallLatencyMs})
}

// reset clears the shard for the next segment (the merged state lives in the
// shared instruments).
func (ps *popShard) reset() {
	if ps == nil {
		return
	}
	ps.objects.Reset()
	ps.sats.Reset()
	ps.buckets.Reset()
	ps.latency.Reset()
}

// record mirrors one replayed request into the live counters.
func (ro *replayObs) record(src sim.Source, size int64) {
	if ro == nil || !src.Valid() {
		return
	}
	ro.bySource[src].Inc()
	ro.bytes[src].Add(size)
	ro.served.Inc()
	if src.Hit() {
		ro.hits.Inc()
	}
}
