package replayer

import (
	"math/rand"
	"time"
)

// RetryPolicy bounds how often a client re-attempts a failed round trip and
// how long it waits in between. Backoff is exponential with full-range
// jitter drawn from an injected, seeded *rand.Rand, so replays with the same
// seed sleep the same schedule — chaos runs stay reproducible.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per operation, including
	// the first. Values <= 1 disable retrying.
	MaxAttempts int
	// BaseBackoff is the nominal delay before the second attempt; each
	// further attempt doubles it. Zero selects 2ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the per-attempt delay. Zero selects 50ms.
	MaxBackoff time.Duration
}

// Default backoff constants (loopback round trips are sub-millisecond, so
// single-digit milliseconds already separate attempts from transient
// connection churn without stalling a replay).
const (
	defaultBaseBackoff = 2 * time.Millisecond
	defaultMaxBackoff  = 50 * time.Millisecond
)

// DefaultRetryPolicy is the policy FaultPolicy falls back to: three attempts
// with 2ms nominal backoff capped at 50ms.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseBackoff: defaultBaseBackoff, MaxBackoff: defaultMaxBackoff}
}

// attempts returns the effective attempt budget (always >= 1).
func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// Backoff returns the delay to sleep before the given attempt (attempt 0 is
// the first try and never waits). The nominal exponential delay d is
// jittered uniformly over [d/2, 3d/2) using rng; a nil rng returns the
// un-jittered nominal delay.
func (p RetryPolicy) Backoff(attempt int, rng *rand.Rand) time.Duration {
	if attempt <= 0 {
		return 0
	}
	base := p.BaseBackoff
	if base <= 0 {
		base = defaultBaseBackoff
	}
	maxB := p.MaxBackoff
	if maxB <= 0 {
		maxB = defaultMaxBackoff
	}
	d := base
	for i := 1; i < attempt && d < maxB; i++ {
		d *= 2
	}
	if d > maxB {
		d = maxB
	}
	if rng != nil {
		d = d/2 + time.Duration(rng.Int63n(int64(d)))
	}
	return d
}
