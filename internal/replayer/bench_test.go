package replayer

import (
	"io"
	"testing"

	"starcdn/internal/cache"
	"starcdn/internal/obs"
)

// BenchmarkReplayFrame measures one client→server round trip over loopback
// TCP — the unit cost every distributed replay pays per request (recorded in
// BENCH_core.json). Three variants:
//
//	get/hit        — plain v1-style frame exchange, no tracing anywhere
//	get/propagate  — trace propagation on but the request unsampled: the
//	                 hello negotiation is paid once per connection, after
//	                 which unsampled requests must cost the same as plain
//	get/traced     — sampled request: OpTraceContext extension frame on the
//	                 wire plus a server span serialised to io.Discard (the
//	                 worst case per-request tracing cost)
func BenchmarkReplayFrame(b *testing.B) {
	srv, err := NewServerOpts(1, cache.LRU, 1<<30, ServerOptions{
		Tracer: obs.NewTracer(io.Discard, 1, 1),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	addr := srv.Addr()

	const obj, size = cache.ObjectID(42), int64(1 << 10)

	run := func(b *testing.B, cl *Client, sc *obs.SpanContext) {
		b.Helper()
		defer cl.Close()
		if err := cl.Admit(addr, obj, size); err != nil {
			b.Fatal(err)
		}
		// Warm the connection (and the hello negotiation, if any) outside
		// the timed region.
		if hit, err := cl.GetCtx(addr, obj, size, sc); err != nil || !hit {
			b.Fatalf("warmup get: hit=%v err=%v", hit, err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			hit, err := cl.GetCtx(addr, obj, size, sc)
			if err != nil {
				b.Fatal(err)
			}
			if !hit {
				b.Fatal("admitted object missed")
			}
		}
	}

	b.Run("get/hit", func(b *testing.B) {
		run(b, NewClient(), nil)
	})
	b.Run("get/propagate", func(b *testing.B) {
		cl := NewClientOpts(ClientOptions{Propagate: true})
		run(b, cl, &obs.SpanContext{TraceHi: 7, TraceLo: 8, Parent: 9})
	})
	b.Run("get/traced", func(b *testing.B) {
		cl := NewClientOpts(ClientOptions{
			Propagate: true,
			Tracer:    obs.NewTracer(io.Discard, 1, 2),
		})
		run(b, cl, &obs.SpanContext{TraceHi: 7, TraceLo: 8, Parent: 9, Sampled: true})
	})
}
