package replayer

import (
	"math/rand"
	"net"
	"testing"
	"time"

	"starcdn/internal/cache"
	"starcdn/internal/core"
	"starcdn/internal/geo"
	"starcdn/internal/orbit"
	"starcdn/internal/sched"
	"starcdn/internal/sim"
	"starcdn/internal/topo"
	"starcdn/internal/trace"
	"starcdn/internal/workload"
)

func TestRetryBackoffBoundsAndDeterminism(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseBackoff: 2 * time.Millisecond, MaxBackoff: 16 * time.Millisecond}
	if d := p.Backoff(0, nil); d != 0 {
		t.Errorf("first attempt should not wait, got %v", d)
	}
	// Nominal (nil rng) doubling with cap.
	want := []time.Duration{2, 4, 8, 16, 16}
	for i, w := range want {
		if d := p.Backoff(i+1, nil); d != w*time.Millisecond {
			t.Errorf("attempt %d: backoff %v, want %v", i+1, d, w*time.Millisecond)
		}
	}
	// Jitter stays within [d/2, 3d/2) and is reproducible per seed.
	r1 := rand.New(rand.NewSource(7))
	r2 := rand.New(rand.NewSource(7))
	for attempt := 1; attempt <= 6; attempt++ {
		d1 := p.Backoff(attempt, r1)
		d2 := p.Backoff(attempt, r2)
		if d1 != d2 {
			t.Errorf("attempt %d: same seed diverged (%v vs %v)", attempt, d1, d2)
		}
		nominal := p.Backoff(attempt, nil)
		if d1 < nominal/2 || d1 >= nominal+nominal/2 {
			t.Errorf("attempt %d: jittered %v outside [%v, %v)", attempt, d1, nominal/2, nominal*3/2)
		}
	}
	// Zero value: exactly one attempt, sane defaults when retrying anyway.
	var zero RetryPolicy
	if zero.attempts() != 1 {
		t.Errorf("zero policy attempts = %d", zero.attempts())
	}
	if d := zero.Backoff(1, nil); d != defaultBaseBackoff {
		t.Errorf("zero policy backoff = %v, want default %v", d, defaultBaseBackoff)
	}
}

// TestFaultInjectorDeterminism: identical seeds produce identical fault
// streams, connection by connection and draw by draw.
func TestFaultInjectorDeterminism(t *testing.T) {
	cfg := FaultConfig{Seed: 42, ResetRate: 0.3, StallRate: 0.2, TruncateRate: 0.1}
	draw := func() []bool {
		inj := NewFaultInjector(cfg)
		var out []bool
		for conn := 0; conn < 8; conn++ {
			a, b := net.Pipe()
			_ = b.Close()
			fc := inj.Wrap(a).(*faultConn)
			for i := 0; i < 32; i++ {
				out = append(out, fc.roll(0.25))
			}
			_ = a.Close()
		}
		return out
	}
	s1, s2 := draw(), draw()
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("fault stream diverged at draw %d", i)
		}
	}
}

// TestClientRetriesThroughInjectedResets: a reset on the first attempt is
// absorbed by the retry budget; the operation still succeeds.
func TestClientRetriesThroughInjectedResets(t *testing.T) {
	s, err := NewServer(1, cache.LRU, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()

	inj := NewFaultInjector(FaultConfig{Seed: 5, ResetRate: 0.3})
	cl := NewClientOpts(ClientOptions{
		IOTimeout: time.Second,
		Retry:     RetryPolicy{MaxAttempts: 8, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond},
		Dial:      inj.Dialer(),
		Seed:      1,
	})
	defer func() { _ = cl.Close() }()

	for i := 0; i < 200; i++ {
		obj := cache.ObjectID(i)
		if err := cl.Admit(s.Addr(), obj, 10); err != nil {
			t.Fatalf("admit %d failed through retries: %v", i, err)
		}
		if hit, err := cl.Get(s.Addr(), obj, 10); err != nil || !hit {
			t.Fatalf("get %d: hit=%v err=%v", i, hit, err)
		}
	}
	if st := inj.Stats(); st.Resets == 0 {
		t.Error("injector never fired; test exercised nothing")
	}
}

// TestClientExhaustsRetriesOnRefusedDials: with every dial refused, the
// client fails after exactly MaxAttempts dials — bounded, not hanging.
func TestClientExhaustsRetriesOnRefusedDials(t *testing.T) {
	inj := NewFaultInjector(FaultConfig{Seed: 3, RefuseRate: 1})
	cl := NewClientOpts(ClientOptions{
		Retry: RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond, MaxBackoff: time.Millisecond},
		Dial:  inj.Dialer(),
	})
	defer func() { _ = cl.Close() }()
	_, err := cl.Get("127.0.0.1:1", 1, 1)
	if err == nil {
		t.Fatal("refused dials should surface an error")
	}
	if st := inj.Stats(); st.Dials != 4 || st.Refused != 4 {
		t.Errorf("dials=%d refused=%d, want 4/4", st.Dials, st.Refused)
	}
}

// TestClientDeadlineTripsOnStall: an injected stall longer than the I/O
// timeout must surface as a timeout within the per-attempt budget rather
// than hanging the replay.
func TestClientDeadlineTripsOnStall(t *testing.T) {
	s, err := NewServer(1, cache.LRU, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()

	inj := NewFaultInjector(FaultConfig{Seed: 9, StallRate: 1, StallFor: 300 * time.Millisecond})
	cl := NewClientOpts(ClientOptions{
		IOTimeout: 50 * time.Millisecond,
		Retry:     RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: time.Millisecond},
		Dial:      inj.Dialer(),
	})
	defer func() { _ = cl.Close() }()

	start := time.Now()
	_, err = cl.Get(s.Addr(), 1, 1)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("stalled reads should time out")
	}
	nerr, ok := err.(net.Error)
	if !ok || !nerr.Timeout() {
		t.Errorf("error %v is not a net timeout", err)
	}
	// 2 attempts × (300ms stall + deadline) plus backoff: must stay well
	// under a runaway hang.
	if elapsed > 3*time.Second {
		t.Errorf("stall handling took %v", elapsed)
	}
	if st := inj.Stats(); st.Stalls == 0 {
		t.Error("no stalls were injected")
	}
}

// TestServerSideTruncationIsRetried: truncated response frames from a
// chaos-wrapped server listener are absorbed by the client's retry budget.
func TestServerSideTruncationIsRetried(t *testing.T) {
	inj := NewFaultInjector(FaultConfig{Seed: 11, TruncateRate: 0.15})
	s, err := NewServerOpts(1, cache.LRU, 1<<20, ServerOptions{Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()

	cl := NewClientOpts(ClientOptions{
		IOTimeout: time.Second,
		Retry:     RetryPolicy{MaxAttempts: 10, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond},
	})
	defer func() { _ = cl.Close() }()
	for i := 0; i < 150; i++ {
		if err := cl.Admit(s.Addr(), cache.ObjectID(i), 10); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
	if st := inj.Stats(); st.Truncations == 0 {
		t.Error("no truncations were injected")
	}
}

// newReplayFixture builds a constellation/hash/users/trace tuple for
// fault-tolerant replay tests.
func newReplayFixture(t *testing.T, requests int, traceSeed int64) (*core.HashScheme, []geo.Point, *trace.Trace) {
	t.Helper()
	c, err := orbit.New(orbit.DefaultStarlinkShell())
	if err != nil {
		t.Fatal(err)
	}
	h, err := core.NewHashScheme(topo.NewGrid(c, topo.StarlinkTable1()), 4)
	if err != nil {
		t.Fatal(err)
	}
	cities := geo.PaperCities()
	users := make([]geo.Point, len(cities))
	for i, city := range cities {
		users[i] = city.Point
	}
	cls := workload.Video()
	cls.NumObjects = 2000
	cls.SizeSigma = 0.5
	cls.MaxSizeBytes = 4 << 20
	g, err := workload.NewGenerator(cls, cities, traceSeed)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := g.Generate(requests, 1200)
	if err != nil {
		t.Fatal(err)
	}
	return h, users, tr
}

// contactedSats performs a dry decision pass and returns the distinct
// satellites the replay would contact with the cluster fully healthy.
func contactedSats(t *testing.T, h *core.HashScheme, users []geo.Point, tr *trace.Trace, opts Options) []orbit.SatID {
	t.Helper()
	c := h.Grid().Constellation()
	scheduler, err := sched.New(c, users, opts.EpochSec, opts.Seed)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[orbit.SatID]bool)
	var sats []orbit.SatID
	for i := range tr.Requests {
		r := &tr.Requests[i]
		first, visible := scheduler.FirstContact(r.Location, r.TimeSec)
		if !visible {
			continue
		}
		home := first
		if opts.Hashing {
			if owner, ok := h.Responsible(first, h.BucketOf(r.Object)); ok {
				home = owner
			}
		}
		if !seen[home] {
			seen[home] = true
			sats = append(sats, home)
		}
	}
	return sats
}

// TestReplayDeadServerMakesProgress: a cluster where a contacted satellite's
// server never comes up must not hang or error — per-attempt deadlines and
// bounded retries degrade its requests to ground misses and the replay
// finishes within a wall-clock ceiling.
func TestReplayDeadServerMakesProgress(t *testing.T) {
	h, users, tr := newReplayFixture(t, 3000, 31)
	opts := Options{
		Hashing: true, Relay: true, Seed: 99,
		Fault: &FaultPolicy{
			DialTimeout: 100 * time.Millisecond,
			IOTimeout:   100 * time.Millisecond,
			Retry:       RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond},
		},
	}
	sats := contactedSats(t, h, users, tr, opts)
	if len(sats) < 3 {
		t.Fatalf("fixture contacts only %d satellites", len(sats))
	}
	cluster, err := NewCluster(cache.LRU, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cluster.Close() }()
	// The most-contacted satellites stay dead for the whole replay; the
	// constellation still believes they are active, so the decision layer
	// keeps routing to them and every contact exercises the network-level
	// failure path.
	for _, id := range sats[:3] {
		if err := cluster.Kill(id); err != nil {
			t.Fatal(err)
		}
	}

	type result struct {
		meter cache.Meter
		err   error
	}
	done := make(chan result, 1)
	go func() {
		m, err := Replay(h, cluster, users, tr, opts)
		done <- result{m, err}
	}()
	select {
	case res := <-done:
		if res.err != nil {
			t.Fatalf("replay errored instead of degrading: %v", res.err)
		}
		if res.meter.Requests != int64(len(tr.Requests)) {
			t.Errorf("accounted %d of %d requests", res.meter.Requests, len(tr.Requests))
		}
		if res.meter.BytesHit+res.meter.BytesMissed != res.meter.BytesTotal {
			t.Errorf("byte accounting leak: %+v", res.meter)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("replay hung past the wall-clock ceiling with a dead server")
	}
}

// TestReplayFailFastWithoutPolicy: without a FaultPolicy the legacy contract
// holds — a dead server aborts the replay with an error.
func TestReplayFailFastWithoutPolicy(t *testing.T) {
	h, users, tr := newReplayFixture(t, 2000, 31)
	opts := Options{Hashing: true, Relay: true, Seed: 99}
	sats := contactedSats(t, h, users, tr, opts)
	cluster, err := NewCluster(cache.LRU, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cluster.Close() }()
	if err := cluster.Kill(sats[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(h, cluster, users, tr, opts); err == nil {
		t.Fatal("fail-fast replay should error on a dead server")
	}
}

// TestFailureScheduleRequiresFaultPolicy: Options.Failures without a
// FaultPolicy is a configuration error, not a silent degradation.
func TestFailureScheduleRequiresFaultPolicy(t *testing.T) {
	h, users, tr := newReplayFixture(t, 100, 31)
	cluster, err := NewCluster(cache.LRU, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cluster.Close() }()
	opts := Options{Hashing: true, Seed: 1,
		Failures: []sim.FailureEvent{{TimeSec: 1, Sat: 0, Down: true}}}
	if _, err := Replay(h, cluster, users, tr, opts); err == nil {
		t.Error("Replay accepted Failures without Fault")
	}
	if _, err := ReplayConcurrent(h, cluster, users, tr, opts); err == nil {
		t.Error("ReplayConcurrent accepted Failures without Fault")
	}
}

// TestClusterKillReviveLifecycle covers the §3.4 server lifecycle: kill
// severs service but preserves contents; revive restores them on a new
// address; a never-started kill still yields a refusing address.
func TestClusterKillReviveLifecycle(t *testing.T) {
	cluster, err := NewCluster(cache.LRU, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cluster.Close() }()
	cl := NewClientOpts(ClientOptions{IOTimeout: time.Second})
	defer func() { _ = cl.Close() }()

	addr, err := cluster.Addr(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Admit(addr, 77, 100); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Kill(5); err != nil {
		t.Fatal(err)
	}
	if !cluster.Down(5) {
		t.Error("killed satellite not reported down")
	}
	if _, err := cluster.Server(5); err == nil {
		t.Error("Server() on a killed satellite should error")
	}
	downAddr, err := cluster.Addr(5)
	if err != nil {
		t.Fatal(err)
	}
	if downAddr != addr {
		t.Errorf("down address changed: %s vs %s", downAddr, addr)
	}
	if _, err := cl.Get(downAddr, 77, 100); err == nil {
		t.Error("request to a killed server should fail")
	}

	if err := cluster.Revive(5); err != nil {
		t.Fatal(err)
	}
	newAddr, err := cluster.Addr(5)
	if err != nil {
		t.Fatal(err)
	}
	hit, err := cl.Get(newAddr, 77, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("cache contents did not survive the kill/revive cycle")
	}

	// Never-started satellite: Kill reserves a refusing address.
	if err := cluster.Kill(9); err != nil {
		t.Fatal(err)
	}
	a9, err := cluster.Addr(9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.DialTimeout("tcp", a9, 500*time.Millisecond); err == nil {
		t.Error("never-started killed satellite accepted a connection")
	}
	// Double-kill and double-revive are no-ops.
	if err := cluster.Kill(9); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Revive(5); err != nil {
		t.Fatal(err)
	}
}
