package replayer

import (
	"bytes"
	"strings"
	"testing"

	"starcdn/internal/cache"
	"starcdn/internal/core"
	"starcdn/internal/geo"
	"starcdn/internal/obs"
	"starcdn/internal/orbit"
	"starcdn/internal/sim"
	"starcdn/internal/topo"
	"starcdn/internal/trace"
	"starcdn/internal/workload"
)

// obsEnv builds the shared replay fixtures for the observability tests.
func obsEnv(t *testing.T, requests int, seed int64) (*core.HashScheme, []geo.Point, *trace.Trace) {
	t.Helper()
	c, err := orbit.New(orbit.DefaultStarlinkShell())
	if err != nil {
		t.Fatal(err)
	}
	h, err := core.NewHashScheme(topo.NewGrid(c, topo.StarlinkTable1()), 4)
	if err != nil {
		t.Fatal(err)
	}
	cities := geo.PaperCities()
	users := make([]geo.Point, len(cities))
	for i, city := range cities {
		users[i] = city.Point
	}
	cls := workload.Video()
	cls.NumObjects = 1500
	cls.SizeSigma = 0.5
	cls.MaxSizeBytes = 4 << 20
	g, err := workload.NewGenerator(cls, cities, seed)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := g.Generate(requests, 900)
	if err != nil {
		t.Fatal(err)
	}
	return h, users, tr
}

// TestReplayObsEndToEnd: a sequential replay with a registry and a rate-1
// tracer must expose per-source counters that sum to the meter, server-side
// hit-rate gauges, and one parseable span per request.
func TestReplayObsEndToEnd(t *testing.T) {
	h, users, tr := obsEnv(t, 4000, 17)
	reg := obs.NewRegistry()
	var spanBuf bytes.Buffer
	tracer := obs.NewTracer(&spanBuf, 1, 5)

	cluster, err := NewClusterOpts(cache.LRU, 64<<20, ServerOptions{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	m, err := Replay(h, cluster, users, tr, Options{
		Hashing: true, Relay: true, Seed: 23, Obs: reg, Tracer: tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tracer.Flush(); err != nil {
		t.Fatal(err)
	}

	var reqTotal, hitTotal int64
	var serverGauges, serverReqs int
	for _, s := range reg.Snapshot() {
		switch s.Name {
		case "starcdn_replay_requests_total":
			reqTotal += int64(s.Value)
			var src sim.Source
			if err := src.UnmarshalText([]byte(s.Labels[0].Value)); err != nil {
				t.Fatalf("series %s%s: %v", s.Name, s.LabelString(), err)
			}
			if src.Hit() {
				hitTotal += int64(s.Value)
			}
		case "starcdn_server_hit_rate":
			serverGauges++
			if s.Value < 0 || s.Value > 1 {
				t.Errorf("hit rate %s = %v out of [0,1]", s.LabelString(), s.Value)
			}
		case "starcdn_server_requests_total":
			serverReqs++
		}
	}
	if reqTotal != m.Requests {
		t.Errorf("replay counters sum to %d requests, meter says %d", reqTotal, m.Requests)
	}
	if hitTotal != m.Hits {
		t.Errorf("hit-source counters sum to %d, meter says %d", hitTotal, m.Hits)
	}
	if serverGauges == 0 || serverReqs == 0 {
		t.Errorf("no server-side series registered (gauges=%d reqs=%d)",
			serverGauges, serverReqs)
	}

	spans, err := obs.ReadSpans(&spanBuf)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(spans)) != m.Requests {
		t.Fatalf("rate-1 tracer emitted %d spans for %d requests", len(spans), m.Requests)
	}
	var spanHits int64
	for i := range spans {
		s := &spans[i]
		if s.Hit {
			spanHits++
		}
		if s.Hit && s.WallMs <= 0 {
			t.Fatalf("span %d hit with non-positive wall latency %v", s.Req, s.WallMs)
		}
		var src sim.Source
		if err := src.UnmarshalText([]byte(s.Source)); err != nil {
			t.Fatalf("span %d: %v", s.Req, err)
		}
	}
	if spanHits != m.Hits {
		t.Errorf("span hit count = %d, meter says %d", spanHits, m.Hits)
	}

	if hlth := cluster.Health(); !hlth.OK || hlth.Live == 0 {
		t.Errorf("healthy cluster reports %+v", hlth)
	}
}

// TestReplayConcurrentObsRace: every per-location worker hammers one shared
// registry and tracer while chaos kills servers mid-replay — the atomic
// instruments and the tracer mutex must hold up under -race, and the
// kill/revive counters plus /healthz state must reflect the schedule.
func TestReplayConcurrentObsRace(t *testing.T) {
	h, users, tr := obsEnv(t, 6000, 29)
	reg := obs.NewRegistry()
	var spanBuf bytes.Buffer
	tracer := obs.NewTracer(&spanBuf, 0.5, 7)

	mid := tr.Requests[len(tr.Requests)/2].TimeSec
	end := tr.Requests[len(tr.Requests)-1].TimeSec
	failures := []sim.FailureEvent{
		{TimeSec: mid, Sat: 100, Down: true, Transient: true},
		{TimeSec: mid, Sat: 200, Down: true}, // permanent: remapped, never revived
		{TimeSec: (mid + end) / 2, Sat: 100, Down: false},
	}

	cluster, err := NewClusterOpts(cache.LRU, 32<<20, ServerOptions{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	m, err := ReplayConcurrent(h, cluster, users, tr, Options{
		Hashing: true, Relay: true, Seed: 31,
		Fault:    &FaultPolicy{},
		Failures: failures,
		Obs:      reg, Tracer: tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tracer.Flush(); err != nil {
		t.Fatal(err)
	}

	var reqTotal int64
	for _, s := range reg.Snapshot() {
		if s.Name == "starcdn_replay_requests_total" {
			reqTotal += int64(s.Value)
		}
	}
	if reqTotal != m.Requests {
		t.Errorf("replay counters sum to %d requests, meter says %d", reqTotal, m.Requests)
	}
	if got := reg.Counter("starcdn_cluster_kills_total").Value(); got != 2 {
		t.Errorf("kills counter = %d, want 2", got)
	}
	if got := reg.Counter("starcdn_cluster_revives_total").Value(); got != 1 {
		t.Errorf("revives counter = %d, want 1", got)
	}

	hlth := cluster.Health()
	if hlth.OK {
		t.Error("health reports OK with a permanently killed satellite")
	}
	if len(hlth.Down) != 1 || hlth.Down[0] != "200" {
		t.Errorf("health down list = %v, want [200]", hlth.Down)
	}

	spans, err := obs.ReadSpans(&spanBuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) == 0 {
		t.Fatal("no spans emitted at sample rate 0.5")
	}
	frac := float64(len(spans)) / float64(m.Requests)
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("sampled fraction = %v, want ~0.5", frac)
	}
	seen := make(map[int64]bool, len(spans))
	for i := range spans {
		if seen[spans[i].Req] {
			t.Fatalf("request %d traced twice", spans[i].Req)
		}
		seen[spans[i].Req] = true
	}
}

// TestReplayRecorderMonotoneDeltas: a flight recorder sampling on short wall
// epochs while chaos kills and revives a server mid-epoch must never report a
// negative windowed delta for any cumulative series — the recorder's
// increase() convention clamps across restarts (obs.Recorder.Delta), and the
// cluster carries meters across kill/revive so totals keep accruing.
func TestReplayRecorderMonotoneDeltas(t *testing.T) {
	h, users, tr := obsEnv(t, 4000, 37)
	reg := obs.NewRegistry()
	rec := obs.NewRecorder(reg, obs.RecorderOptions{EpochSec: 0.05})

	victim := h.NearestOwner(0, h.BucketOf(tr.Requests[0].Object))
	mid := tr.Requests[len(tr.Requests)/2].TimeSec
	end := tr.Requests[len(tr.Requests)-1].TimeSec
	failures := []sim.FailureEvent{
		{TimeSec: mid, Sat: victim, Down: true, Transient: true},
		{TimeSec: (mid + end) / 2, Sat: victim, Down: false},
	}

	cluster, err := NewClusterOpts(cache.LRU, 32<<20, ServerOptions{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if _, err := Replay(h, cluster, users, tr, Options{
		Hashing: true, Relay: true, Seed: 41, Obs: reg, Recorder: rec,
		Fault: &FaultPolicy{}, Failures: failures,
	}); err != nil {
		t.Fatal(err)
	}

	if rec.Epochs() == 0 {
		t.Fatal("recorder captured no epochs")
	}
	if got := reg.Counter("starcdn_cluster_kills_total").Value(); got != 1 {
		t.Fatalf("kills counter = %d, want 1 (fixture did not exercise a kill)", got)
	}
	var checked int
	for _, key := range rec.Series() {
		name := key
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		if !strings.HasSuffix(name, "_total") && !strings.HasSuffix(name, "_count") {
			continue
		}
		d, ok := rec.Delta(key, 0)
		if !ok {
			continue
		}
		checked++
		if d < 0 {
			t.Errorf("%s: windowed delta = %v, want non-negative across kill/revive", key, d)
		}
	}
	if checked == 0 {
		t.Fatal("no cumulative series recorded")
	}
}
