// Package replayer is the distributed counterpart of the in-process
// simulator: each satellite's cache runs behind its own TCP endpoint on the
// loopback interface and ISL fetches become real network round trips,
// mirroring the paper's multi-process cache replayer ("spawns a process for
// each satellite that uses TCP to mimic ISLs", §5.1).
//
// The wire protocol is a fixed-size binary frame per request:
//
//	request:  op(1) | object(8, big endian) | size(8, big endian)
//	response: status(1) | reserved(8) | reserved(8)
//
// Ops: OpGet (lookup + touch), OpContains (peek), OpAdmit (insert),
// OpStats (returns request count in the first reserved field and hit count
// in the second).
//
// Protocol version 2 adds two negotiated extensions on top of the version-1
// frames, both backward compatible in either direction:
//
//	OpHello        — capability negotiation. A v2 client sends it once per
//	                 connection (a=protocol version, b=requested capability
//	                 bits); a v2 server answers StatusOK with the granted
//	                 capabilities. A v1 server answers its unknown-op
//	                 StatusError, which the client reads as "no extensions"
//	                 and the connection proceeds as plain v1. V1 clients
//	                 never send OpHello, so v2 servers serve them unchanged.
//	OpTraceContext — distributed-trace context (only after CapTrace was
//	                 granted). The frame carries the 128-bit trace ID in its
//	                 two operand fields and is followed by a fixed 9-byte
//	                 tail: parent span ID (8, big endian) | flags (1, bit 0 =
//	                 sampled). It elicits no response; the server attaches
//	                 the context to the next request frame on the connection.
//
// Protocol version 3 adds overload control, again negotiated per connection:
//
//	CapShed    — requested by clients that understand shed responses. Once
//	             granted, the server may answer OpGet/OpContains/OpAdmit with
//	             StatusShed instead of performing the operation, meaning the
//	             request was deliberately rejected by overload control
//	             (stage ≥ 2 admission, stage ≥ 3 hits-only). Clients map it
//	             to shed.ErrShed and MUST NOT retry — the rejection is load
//	             control, a retry only adds load. On connections without
//	             CapShed the server answers StatusError instead, which v2
//	             peers already treat as a terminal fault (fail-fast or the
//	             §3.4 FaultPolicy degrade), so old clients degrade safely
//	             without ever seeing an unknown status byte.
//	OpShed     — stage query (requires CapShed): answered StatusOK with the
//	             active shed stage in the first operand and the controller
//	             burn rate ×1e6, truncated, in the second.
package replayer

import (
	"encoding/binary"
	"fmt"
	"io"

	"starcdn/internal/cache"
	"starcdn/internal/obs"
)

// Op identifies a cache operation on the wire.
type Op uint8

// Wire operations.
const (
	OpGet Op = iota + 1
	OpContains
	OpAdmit
	OpStats
	OpHello        // v2: capability negotiation (a=version, b=capability bits)
	OpTraceContext // v2: trace-context extension frame (requires CapTrace)
	OpShed         // v3: shed-stage query (requires CapShed)
)

// ProtocolVersion is the wire revision this build speaks. Version 1 is the
// original fixed-frame protocol; version 2 adds hello negotiation and the
// trace-context extension frame; version 3 adds overload control (CapShed,
// StatusShed, OpShed).
const ProtocolVersion = 3

// Capability bits negotiated via OpHello.
const (
	// CapTrace lets the client prefix request frames with OpTraceContext so
	// server-side spans join the client's distributed trace.
	CapTrace uint64 = 1 << 0
	// CapShed lets the server answer cache ops with StatusShed (overload
	// rejection) and the client query the shed stage via OpShed.
	CapShed uint64 = 1 << 1
)

// Status is a response code.
type Status uint8

// Wire statuses.
const (
	StatusMiss Status = iota
	StatusHit
	StatusOK
	StatusError
	// StatusShed (v3, requires CapShed) rejects the operation by overload
	// control: the server is shedding this value class. Not an error in
	// the transport sense — the connection stays healthy and retrying is
	// forbidden.
	StatusShed
)

const frameSize = 17

// message is the decoded form of both requests and responses.
type message struct {
	op Op // request op, or Status re-encoded for responses
	a  uint64
	b  uint64
}

// writeFrameBuf marshals one frame into the caller-owned scratch buffer and
// writes it. Threading the buffer from the caller keeps the per-frame hot
// paths allocation-free: a stack array declared here would escape through the
// io.Writer interface and cost one heap allocation per frame, whereas the
// client's per-connection scratch and the server's per-handler scratch are
// each allocated once and reused for every frame on the connection.
func writeFrameBuf(w io.Writer, buf *[frameSize]byte, first uint8, a, b uint64) error {
	buf[0] = first
	binary.BigEndian.PutUint64(buf[1:9], a)
	binary.BigEndian.PutUint64(buf[9:17], b)
	_, err := w.Write(buf[:])
	return err
}

// readFrameBuf reads one frame through the caller-owned scratch buffer.
func readFrameBuf(r io.Reader, buf *[frameSize]byte) (message, error) {
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return message{}, err
	}
	return message{
		op: Op(buf[0]),
		a:  binary.BigEndian.Uint64(buf[1:9]),
		b:  binary.BigEndian.Uint64(buf[9:17]),
	}, nil
}

// writeFrame is the convenience form for once-per-connection and test
// traffic; per-frame paths use writeFrameBuf with a reused buffer.
func writeFrame(w io.Writer, first uint8, a, b uint64) error {
	var buf [frameSize]byte
	return writeFrameBuf(w, &buf, first, a, b)
}

// readFrame is the convenience form of readFrameBuf; see writeFrame.
func readFrame(r io.Reader) (message, error) {
	var buf [frameSize]byte
	return readFrameBuf(r, &buf)
}

// writeRequest sends a request frame through the caller's scratch buffer.
func writeRequest(w io.Writer, buf *[frameSize]byte, op Op, obj cache.ObjectID, size int64) error {
	return writeFrameBuf(w, buf, uint8(op), uint64(obj), uint64(size))
}

// writeResponse sends a response frame through the caller's scratch buffer.
func writeResponse(w io.Writer, buf *[frameSize]byte, st Status, a, b uint64) error {
	return writeFrameBuf(w, buf, uint8(st), a, b)
}

// readResponse reads and validates a response frame through the caller's
// scratch buffer.
func readResponse(r io.Reader, buf *[frameSize]byte) (Status, uint64, uint64, error) {
	m, err := readFrameBuf(r, buf)
	if err != nil {
		return StatusError, 0, 0, err
	}
	st := Status(m.op)
	if st > StatusShed {
		return StatusError, 0, 0, fmt.Errorf("replayer: bad status byte %d", m.op)
	}
	return st, m.a, m.b, nil
}

// traceTailSize is the fixed extension tail following an OpTraceContext
// frame: parent span ID (8) plus a flags byte.
const traceTailSize = 9

// traceSampledFlag marks a propagated context as sampled.
const traceSampledFlag = 0x01

// writeTraceContext sends the trace-context extension: one standard frame
// carrying the 128-bit trace ID, then the 9-byte parent/flags tail. Callers
// must have negotiated CapTrace first — a v1 server would misparse the tail
// as the start of the next frame.
func writeTraceContext(w io.Writer, sc obs.SpanContext) error {
	var buf [frameSize + traceTailSize]byte
	buf[0] = uint8(OpTraceContext)
	binary.BigEndian.PutUint64(buf[1:9], sc.TraceHi)
	binary.BigEndian.PutUint64(buf[9:17], sc.TraceLo)
	binary.BigEndian.PutUint64(buf[17:25], sc.Parent)
	if sc.Sampled {
		buf[25] = traceSampledFlag
	}
	_, err := w.Write(buf[:])
	return err
}

// readTraceTail completes an OpTraceContext frame (whose leading 17 bytes the
// caller already decoded into the trace ID) by reading the parent/flags tail.
func readTraceTail(r io.Reader, traceHi, traceLo uint64) (obs.SpanContext, error) {
	var tail [traceTailSize]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return obs.SpanContext{}, err
	}
	return obs.SpanContext{
		TraceHi: traceHi,
		TraceLo: traceLo,
		Parent:  binary.BigEndian.Uint64(tail[0:8]),
		Sampled: tail[8]&traceSampledFlag != 0,
	}, nil
}
