// Package replayer is the distributed counterpart of the in-process
// simulator: each satellite's cache runs behind its own TCP endpoint on the
// loopback interface and ISL fetches become real network round trips,
// mirroring the paper's multi-process cache replayer ("spawns a process for
// each satellite that uses TCP to mimic ISLs", §5.1).
//
// The wire protocol is a fixed-size binary frame per request:
//
//	request:  op(1) | object(8, big endian) | size(8, big endian)
//	response: status(1) | reserved(8) | reserved(8)
//
// Ops: OpGet (lookup + touch), OpContains (peek), OpAdmit (insert),
// OpStats (returns request count in the first reserved field and hit count
// in the second).
package replayer

import (
	"encoding/binary"
	"fmt"
	"io"

	"starcdn/internal/cache"
)

// Op identifies a cache operation on the wire.
type Op uint8

// Wire operations.
const (
	OpGet Op = iota + 1
	OpContains
	OpAdmit
	OpStats
)

// Status is a response code.
type Status uint8

// Wire statuses.
const (
	StatusMiss Status = iota
	StatusHit
	StatusOK
	StatusError
)

const frameSize = 17

// message is the decoded form of both requests and responses.
type message struct {
	op Op // request op, or Status re-encoded for responses
	a  uint64
	b  uint64
}

func writeFrame(w io.Writer, first uint8, a, b uint64) error {
	var buf [frameSize]byte
	buf[0] = first
	binary.BigEndian.PutUint64(buf[1:9], a)
	binary.BigEndian.PutUint64(buf[9:17], b)
	_, err := w.Write(buf[:])
	return err
}

func readFrame(r io.Reader) (message, error) {
	var buf [frameSize]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return message{}, err
	}
	return message{
		op: Op(buf[0]),
		a:  binary.BigEndian.Uint64(buf[1:9]),
		b:  binary.BigEndian.Uint64(buf[9:17]),
	}, nil
}

// writeRequest sends a request frame.
func writeRequest(w io.Writer, op Op, obj cache.ObjectID, size int64) error {
	return writeFrame(w, uint8(op), uint64(obj), uint64(size))
}

// writeResponse sends a response frame.
func writeResponse(w io.Writer, st Status, a, b uint64) error {
	return writeFrame(w, uint8(st), a, b)
}

// readResponse reads and validates a response frame.
func readResponse(r io.Reader) (Status, uint64, uint64, error) {
	m, err := readFrame(r)
	if err != nil {
		return StatusError, 0, 0, err
	}
	st := Status(m.op)
	if st > StatusError {
		return StatusError, 0, 0, fmt.Errorf("replayer: bad status byte %d", m.op)
	}
	return st, m.a, m.b, nil
}
