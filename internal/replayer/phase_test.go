package replayer

import (
	"testing"

	"starcdn/internal/cache"
	"starcdn/internal/obs"
)

// TestReplayPhases: a sequential replay with a phase profiler attributes
// time to the round-trip stages — dial (once per connection), frame-write
// and frame-read (per request) — without changing the replay's results.
func TestReplayPhases(t *testing.T) {
	h, users, tr := obsEnv(t, 2000, 17)

	run := func(phases *obs.PhaseProfiler) cache.Meter {
		t.Helper()
		cluster, err := NewClusterOpts(cache.LRU, 64<<20, ServerOptions{})
		if err != nil {
			t.Fatal(err)
		}
		defer cluster.Close()
		m, err := Replay(h, cluster, users, tr, Options{
			Hashing: true, Relay: true, Seed: 23, Phases: phases,
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}

	plain := run(nil)
	phases := obs.NewReplayPhases(obs.NewRegistry())
	profiled := run(phases)

	if plain != profiled {
		t.Errorf("meters diverged: plain=%+v profiled=%+v", plain, profiled)
	}

	phases.FlushEpoch() // drain the tail; Replay has no recorder here
	bd := phases.Breakdown()
	byStage := map[string]obs.PhaseStageSeconds{}
	for _, s := range bd {
		byStage[s.Stage] = s
	}
	for _, stage := range []string{"dial", "frame-write", "frame-read"} {
		if byStage[stage].Seconds <= 0 {
			t.Errorf("stage %q attributed no time: %+v", stage, bd)
		}
	}
	// A clean replay performs no retries; the stage exists but stays idle.
	if byStage["retry"].Seconds != 0 {
		t.Errorf("retry stage charged %v seconds on a clean replay", byStage["retry"].Seconds)
	}
	// Per-request frame time dominates one-time dials on a 2000-request run.
	if byStage["frame-read"].Seconds < byStage["dial"].Seconds {
		t.Errorf("frame-read (%vs) should dominate dial (%vs) over 2000 requests",
			byStage["frame-read"].Seconds, byStage["dial"].Seconds)
	}
}
