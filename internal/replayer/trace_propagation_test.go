package replayer

import (
	"bytes"
	"net"
	"sync"
	"testing"

	"starcdn/internal/cache"
	"starcdn/internal/obs"
	"starcdn/internal/sim"
)

// syncBuffer serialises writes so one tracer buffer can back many servers.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

// TestTracePropagationRoundTrip runs a sequential replay with protocol-v2
// trace propagation and checks every server-side operation span joins the
// client's distributed trace: same trace ID, parented under one of the root
// span's hop span IDs (or under another span of the same trace, for spans
// like relay probes whose hop was never recorded).
func TestTracePropagationRoundTrip(t *testing.T) {
	h, users, tr := obsEnv(t, 3000, 19)

	var clientBuf bytes.Buffer
	clientTracer := obs.NewTracer(&clientBuf, 1, 5)
	var serverBuf syncBuffer
	serverTracer := obs.NewTracer(&serverBuf, 1, 5)

	cluster, err := NewClusterOpts(cache.LRU, 64<<20, ServerOptions{Tracer: serverTracer})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	m, err := Replay(h, cluster, users, tr, Options{
		Hashing: true, Relay: true, Seed: 23,
		Tracer: clientTracer, Propagate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := clientTracer.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := serverTracer.Flush(); err != nil {
		t.Fatal(err)
	}

	clientSpans, err := obs.ReadSpans(&clientBuf)
	if err != nil {
		t.Fatal(err)
	}
	serverSpans, err := obs.ReadSpans(&serverBuf.b)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(clientSpans)) != m.Requests {
		t.Fatalf("client emitted %d spans for %d requests", len(clientSpans), m.Requests)
	}
	if len(serverSpans) == 0 {
		t.Fatal("no server-side spans emitted")
	}

	// Index client roots: trace ID -> root span, and the hop span IDs the
	// root exposes as attachment points.
	roots := make(map[string]*obs.Span)
	hopIDs := make(map[string]map[string]bool) // trace -> hop span IDs
	for i := range clientSpans {
		s := &clientSpans[i]
		if s.TraceID == "" || s.SpanID == "" {
			t.Fatalf("client span req %d lacks trace identity: %+v", s.Req, s)
		}
		if s.Parent != "" {
			continue // retry spans are children, not roots
		}
		if s.Proc != "client" {
			t.Fatalf("root span req %d proc = %q", s.Req, s.Proc)
		}
		roots[s.TraceID] = s
		ids := make(map[string]bool)
		for _, hop := range s.Hops {
			if hop.SpanID != "" {
				ids[hop.SpanID] = true
			}
		}
		hopIDs[s.TraceID] = ids
	}
	if len(roots) != len(clientSpans) {
		t.Fatalf("%d roots for %d client spans (duplicate trace IDs?)", len(roots), len(clientSpans))
	}

	underHop, underTrace := 0, 0
	for i := range serverSpans {
		s := &serverSpans[i]
		root, ok := roots[s.TraceID]
		if !ok {
			t.Fatalf("server span (proc %s kind %s) has unknown trace %s", s.Proc, s.Kind, s.TraceID)
		}
		if s.Parent == "" || s.SpanID == "" {
			t.Fatalf("server span in trace %s lacks span identity: %+v", s.TraceID, s)
		}
		if s.Proc == "" || s.Proc == "client" {
			t.Fatalf("server span proc = %q", s.Proc)
		}
		switch s.Kind {
		case "get", "contains", "admit":
		default:
			t.Fatalf("unexpected server span kind %q", s.Kind)
		}
		if hopIDs[s.TraceID][s.Parent] {
			underHop++
		} else {
			// Relay probes that found nothing parent under a hop ID the
			// client never recorded as a Hop; they still belong to the trace.
			underTrace++
		}
		_ = root
	}
	if underHop == 0 {
		t.Error("no server span attached under a recorded client hop")
	}
	t.Logf("server spans: %d under recorded hops, %d probe-only", underHop, underTrace)

	// Spot-check determinism: root span IDs follow the derived convention.
	for id, root := range roots {
		hi, lo := clientTracer.TraceID(root.Req)
		if want := (obs.SpanContext{TraceHi: hi, TraceLo: lo}).TraceString(); want != id {
			t.Fatalf("req %d trace ID %s, derived %s", root.Req, id, want)
		}
		if want := obs.SpanIDString(obs.DeriveSpanID(hi, lo, 0)); root.SpanID != want {
			t.Fatalf("req %d root span ID %s, derived %s", root.Req, root.SpanID, want)
		}
		break // one is enough; IDs are pure functions of (seed, req)
	}
}

// v1Server speaks the pre-extension protocol: every op it does not know —
// including OpHello — answers StatusError, exactly like an old server build.
func v1Server(t *testing.T) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	store := make(map[uint64]bool)
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func(conn net.Conn) {
				defer wg.Done()
				defer conn.Close()
				for {
					m, err := readFrame(conn)
					if err != nil {
						return
					}
					var st Status
					mu.Lock()
					switch m.op {
					case OpGet, OpContains:
						if store[m.a] {
							st = StatusHit
						} else {
							st = StatusMiss
						}
					case OpAdmit:
						store[m.a] = true
						st = StatusOK
					default: // v1 servers do not know OpHello/OpTraceContext
						st = StatusError
					}
					mu.Unlock()
					var scratch [frameSize]byte
					if err := writeResponse(conn, &scratch, st, 0, 0); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String(), func() {
		ln.Close()
		wg.Wait()
	}
}

// TestTraceV1ServerInterop checks the hello negotiation downgrades cleanly:
// a propagation-enabled client talking to a protocol-v1 server must complete
// plain operations (no context frames on the wire, no stream desync) and
// still emit its own client-side spans.
func TestTraceV1ServerInterop(t *testing.T) {
	addr, stop := v1Server(t)
	defer stop()

	var buf bytes.Buffer
	tracer := obs.NewTracer(&buf, 1, 3)
	cl := NewClientOpts(ClientOptions{Propagate: true, Tracer: tracer})
	defer cl.Close()

	sc := &obs.SpanContext{TraceHi: 1, TraceLo: 2, Parent: 3, Sampled: true}
	// Miss, admit, hit — three round trips over one downgraded connection.
	if hit, err := cl.GetCtx(addr, 42, 100, sc); err != nil || hit {
		t.Fatalf("v1 get: hit=%v err=%v", hit, err)
	}
	if err := cl.AdmitCtx(addr, 42, 100, sc); err != nil {
		t.Fatalf("v1 admit: %v", err)
	}
	if hit, err := cl.GetCtx(addr, 42, 100, sc); err != nil || !hit {
		t.Fatalf("v1 get after admit: hit=%v err=%v", hit, err)
	}
	if has, err := cl.ContainsCtx(addr, 42, sc); err != nil || !has {
		t.Fatalf("v1 contains: has=%v err=%v", has, err)
	}
}

// TestTraceV2Negotiation checks the capability grant against a real server:
// the first exchange on a fresh connection performs the hello, and sampled
// contexts then ride ahead of request frames without breaking the stream.
func TestTraceV2Negotiation(t *testing.T) {
	var buf syncBuffer
	serverTracer := obs.NewTracer(&buf, 1, 9)
	s, err := NewServerOpts(4, cache.LRU, 1<<20, ServerOptions{Tracer: serverTracer})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	cl := NewClientOpts(ClientOptions{Propagate: true})
	defer cl.Close()
	sc := &obs.SpanContext{TraceHi: 7, TraceLo: 8, Parent: 9, Sampled: true}
	if err := cl.AdmitCtx(s.Addr(), 1, 64, sc); err != nil {
		t.Fatal(err)
	}
	if hit, err := cl.GetCtx(s.Addr(), 1, 64, sc); err != nil || !hit {
		t.Fatalf("get: hit=%v err=%v", hit, err)
	}
	// Unsampled contexts and nil contexts send no extension frame but still
	// round-trip.
	if _, err := cl.GetCtx(s.Addr(), 1, 64, &obs.SpanContext{Sampled: false}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Get(s.Addr(), 1, 64); err != nil {
		t.Fatal(err)
	}
	if err := serverTracer.Flush(); err != nil {
		t.Fatal(err)
	}
	spans, err := obs.ReadSpans(&buf.b)
	if err != nil {
		t.Fatal(err)
	}
	// Exactly the two sampled exchanges produced server spans.
	if len(spans) != 2 {
		t.Fatalf("server emitted %d spans, want 2: %+v", len(spans), spans)
	}
	want := (obs.SpanContext{TraceHi: 7, TraceLo: 8}).TraceString()
	for _, sp := range spans {
		if sp.TraceID != want || sp.Parent != obs.SpanIDString(9) {
			t.Errorf("server span trace=%s parent=%s, want trace=%s parent=%s",
				sp.TraceID, sp.Parent, want, obs.SpanIDString(9))
		}
		if sp.Proc != "sat-4" {
			t.Errorf("server span proc = %q, want sat-4", sp.Proc)
		}
	}
}

// TestSimReplayHopChainParity replays one trace through both pipelines with
// rate-1 tracers and the same seed, then compares the per-request hop chains
// hop for hop: same source labels, same hop kinds, same satellites. The sim
// chain carries a final user-link hop (a modelled downlink the TCP replay has
// no analogue for), which is stripped before comparing.
func TestSimReplayHopChainParity(t *testing.T) {
	h, users, tr := obsEnv(t, 4000, 29)
	const capacity = 64 << 20
	const seed = 77

	var simBuf bytes.Buffer
	simTracer := obs.NewTracer(&simBuf, 1, 5)
	pol := sim.NewStarCDN(h, sim.CacheConfig{Kind: cache.LRU, Bytes: capacity},
		sim.StarCDNOptions{Hashing: true, Relay: true})
	m1, err := sim.Run(h.Grid().Constellation(), users, tr, pol, sim.Config{
		Seed: seed, Tracer: simTracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := simTracer.Flush(); err != nil {
		t.Fatal(err)
	}

	var repBuf bytes.Buffer
	repTracer := obs.NewTracer(&repBuf, 1, 5)
	cluster, err := NewCluster(cache.LRU, capacity)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	m2, err := Replay(h, cluster, users, tr, Options{
		Hashing: true, Relay: true, Seed: seed, Tracer: repTracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := repTracer.Flush(); err != nil {
		t.Fatal(err)
	}
	if m1.Meter.Hits != m2.Hits {
		t.Fatalf("pipelines disagree before span comparison: %d vs %d hits",
			m1.Meter.Hits, m2.Hits)
	}

	simSpans, err := obs.ReadSpans(&simBuf)
	if err != nil {
		t.Fatal(err)
	}
	repSpans, err := obs.ReadSpans(&repBuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(simSpans) != len(repSpans) || len(simSpans) != len(tr.Requests) {
		t.Fatalf("span counts: sim %d, replay %d, trace %d",
			len(simSpans), len(repSpans), len(tr.Requests))
	}

	for i := range simSpans {
		ss, rs := &simSpans[i], &repSpans[i]
		if ss.Req != rs.Req {
			t.Fatalf("span %d request index mismatch: %d vs %d", i, ss.Req, rs.Req)
		}
		if ss.Source != rs.Source {
			t.Fatalf("req %d source: sim %q, replay %q", ss.Req, ss.Source, rs.Source)
		}
		// Same seed, same derivation: the distributed-trace identities match,
		// making the two span files cross-referenceable by trace ID.
		if ss.TraceID != rs.TraceID || ss.SpanID != rs.SpanID {
			t.Fatalf("req %d identity: sim %s/%s, replay %s/%s",
				ss.Req, ss.TraceID, ss.SpanID, rs.TraceID, rs.SpanID)
		}
		simHops := ss.Hops
		if n := len(simHops); n > 0 && simHops[n-1].Kind == "user-link" {
			simHops = simHops[:n-1]
		}
		if len(simHops) != len(rs.Hops) {
			t.Fatalf("req %d hop counts: sim %v, replay %v", ss.Req, ss.Hops, rs.Hops)
		}
		for j := range simHops {
			if simHops[j].Kind != rs.Hops[j].Kind || simHops[j].Sat != rs.Hops[j].Sat {
				t.Fatalf("req %d hop %d: sim %s(sat %d), replay %s(sat %d)",
					ss.Req, j, simHops[j].Kind, simHops[j].Sat,
					rs.Hops[j].Kind, rs.Hops[j].Sat)
			}
		}
	}
}
