package replayer

import (
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sort"
	"strconv"
	"sync"
	"time"

	"starcdn/internal/cache"
	"starcdn/internal/core"
	"starcdn/internal/obs"
	"starcdn/internal/orbit"
	"starcdn/internal/shed"
)

// ServerOptions configures optional server behaviour.
type ServerOptions struct {
	// Log receives structured server events (accept-loop errors). Nil logs
	// through a stderr text handler; tests inject obs.NewCapture so `make
	// check` output stays clean and accept errors can be asserted on as
	// records rather than formatted strings.
	Log *slog.Logger
	// Obs, when non-nil, registers live per-satellite series: request
	// counters, hit-rate gauges, open-connection gauges, and — on clusters —
	// kill/revive counters.
	Obs *obs.Registry
	// Injector, when non-nil, wraps every accepted connection with
	// deterministic fault injection (server-side chaos).
	Injector *FaultInjector
	// Cache, when non-nil, is served instead of a freshly built one.
	// Cluster.Revive uses this to model a §3.4 reboot whose local storage
	// survives the outage, matching the in-process simulator, whose
	// per-satellite caches persist across failure events.
	Cache cache.Policy
	// Meter seeds the server-side accounting (revive continuity).
	Meter cache.Meter
	// Tracer, when non-nil, emits one child span per cache operation that
	// arrives with a sampled trace context (protocol v2, CapTrace): the
	// server-side half of the distributed trace, written to this process's
	// own JSONL stream and stitched back together by starcdn-trace
	// -assemble. Servers without a tracer still negotiate CapTrace and
	// parse context frames — propagation costs nothing to accept.
	Tracer *obs.Tracer
	// Shedder, when non-nil, enforces overload control at the wire
	// (protocol v3): at stage ≥ 1 relay probes (OpContains) are refused,
	// at stage ≥ 3 owner-miss fetches (OpGet on a miss, OpAdmit) are
	// refused. Connections that negotiated CapShed get StatusShed; v2
	// peers get StatusError, their existing terminal-fault path. Cluster
	// servers share the one controller, like satellites sharing a control
	// plane; it survives Kill/Revive with the rest of the options.
	Shedder *shed.Controller
}

// Server runs one satellite's cache behind a TCP listener.
type Server struct {
	id     orbit.SatID
	ln     net.Listener
	log    *slog.Logger
	tracer *obs.Tracer
	shed   *shed.Controller
	proc   string     // span Proc label, "sat-<id>"
	mu     sync.Mutex // serialises cache access across connections
	cache  cache.Policy
	meter  cache.Meter

	// obs handles (nil when observability is off; updates are no-ops).
	reqs    *obs.Counter
	hitRate *obs.Gauge
	open    *obs.Gauge

	wg     sync.WaitGroup
	closed chan struct{}

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
}

// NewServer starts a cache server on a fresh loopback port.
func NewServer(id orbit.SatID, kind cache.Kind, capacity int64) (*Server, error) {
	return NewServerOpts(id, kind, capacity, ServerOptions{})
}

// NewServerOpts starts a cache server with explicit options.
func NewServerOpts(id orbit.SatID, kind cache.Kind, capacity int64, opts ServerOptions) (*Server, error) {
	c := opts.Cache
	if c == nil {
		var err error
		c, err = cache.New(kind, capacity)
		if err != nil {
			return nil, err
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("replayer: listen: %w", err)
	}
	if opts.Injector != nil {
		ln = opts.Injector.WrapListener(ln)
	}
	s := &Server{
		id:     id,
		ln:     ln,
		log:    obs.NewLogger(nil).With("sat", int(id)),
		tracer: opts.Tracer,
		shed:   opts.Shedder,
		proc:   "sat-" + strconv.Itoa(int(id)),
		cache:  c,
		meter:  opts.Meter,
		closed: make(chan struct{}),
		conns:  make(map[net.Conn]struct{}),
	}
	if opts.Log != nil {
		s.log = opts.Log.With("sat", int(id))
	}
	if opts.Obs != nil {
		sat := obs.L("sat", strconv.Itoa(int(id)))
		s.reqs = opts.Obs.Counter("starcdn_server_requests_total", sat)
		s.hitRate = opts.Obs.Gauge("starcdn_server_hit_rate", sat)
		s.open = opts.Obs.Gauge("starcdn_server_open_conns", sat)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// ID returns the satellite this server represents.
func (s *Server) ID() orbit.SatID { return s.id }

// Meter returns a snapshot of the server-side hit accounting.
func (s *Server) Meter() cache.Meter {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.meter
}

// Close stops the listener, severs every open connection (a crash does not
// wait for clients to hang up), and waits for the handlers to finish.
func (s *Server) Close() error {
	close(s.closed)
	err := s.ln.Close()
	s.connMu.Lock()
	for conn := range s.conns {
		// Severing a crashed server's connections; the close error carries
		// no information (the peer sees a reset either way).
		_ = conn.Close()
	}
	s.connMu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				s.log.Error("accept failed", "err", err)
				return
			}
		}
		s.connMu.Lock()
		s.conns[conn] = struct{}{}
		s.open.Set(float64(len(s.conns)))
		s.connMu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	// Handler exit means the client is gone; the close error carries no
	// information worth propagating.
	defer func() {
		s.connMu.Lock()
		delete(s.conns, conn)
		s.open.Set(float64(len(s.conns)))
		s.connMu.Unlock()
		_ = conn.Close()
	}()
	// pending holds the trace context delivered by the last OpTraceContext
	// extension frame; it applies to exactly the next request frame.
	var pending *obs.SpanContext
	// shedOK records whether this connection negotiated CapShed: only then
	// may shed rejections use StatusShed; older peers get StatusError,
	// their established terminal-fault path.
	shedOK := false
	// scratch is this handler's frame marshal buffer, reused for every frame
	// on the connection so the serve loop allocates nothing per request.
	var scratch [frameSize]byte
	for {
		//lint:ignore deadline server handlers block on the next request by design: clients arm per-frame deadlines on their side, and Server.Close severs every open conn so a stalled client cannot pin the wait group
		m, err := readFrameBuf(conn, &scratch)
		if err != nil {
			return // client closed, malformed/truncated frame, or broken pipe
		}
		switch m.op {
		case OpHello:
			// Negotiation: grant the trace capability unconditionally —
			// parsing context frames is cheap whether or not this server
			// carries a tracer — grant CapShed to peers that asked for it
			// (they proved they understand StatusShed), and echo the
			// protocol version.
			granted := CapTrace
			if m.b&CapShed != 0 {
				granted |= CapShed
				shedOK = true
			}
			//lint:ignore deadline response writes go to the kernel socket buffer of a loopback conn; a stalled client is severed by Server.Close
			if err := writeResponse(conn, &scratch, StatusOK, ProtocolVersion, granted); err != nil {
				return
			}
		case OpTraceContext:
			// The context frame has a fixed 9-byte tail; it elicits no
			// response and arms the context for the next request frame.
			//lint:ignore deadline the extension tail arrives back-to-back with its frame from a client that already armed its own per-frame deadline; Server.Close severs stalled conns
			sc, err := readTraceTail(conn, m.a, m.b)
			if err != nil {
				return
			}
			pending = &sc
		default:
			if err := s.serveOne(conn, &scratch, m, pending, shedOK); err != nil {
				return
			}
			pending = nil
		}
	}
}

// shedStatus is the wire answer for an operation refused by overload
// control: StatusShed on connections that negotiated CapShed, StatusError
// (the pre-v3 terminal-fault path) otherwise.
func shedStatus(shedOK bool) Status {
	if shedOK {
		return StatusShed
	}
	return StatusError
}

func (s *Server) serveOne(conn net.Conn, buf *[frameSize]byte, m message, sc *obs.SpanContext, shedOK bool) error {
	var opStart time.Time
	if s.tracer != nil && sc != nil && sc.Sampled {
		opStart = time.Now()
	}
	// Snapshot the stage outside s.mu: the controller has its own lock and
	// the stage holds for the whole operation, exactly as the simulator
	// reads it once per request.
	stage := shed.StageNormal
	if s.shed != nil {
		stage = s.shed.Stage()
	}
	s.mu.Lock()
	var st Status
	var a, b uint64
	switch m.op {
	case OpGet:
		hit := s.cache.Get(cache.ObjectID(m.a))
		s.meter.Record(int64(m.b), hit)
		switch {
		case hit:
			st = StatusHit
		case stage.Sheds(core.ValueMissFetch):
			// Stage ≥ 3: hits-only. The Get already ran (recency touched,
			// miss metered — identical to the simulator's stage-3 path);
			// the fetch behind it is refused.
			st = shedStatus(shedOK)
		default:
			st = StatusMiss
		}
	case OpContains:
		if stage.Sheds(core.ValueRelayProbe) {
			// Stage ≥ 1: relay probes are refused without touching the
			// cache — the probe is speculative work this server is shedding.
			st = shedStatus(shedOK)
		} else if s.cache.Contains(cache.ObjectID(m.a)) {
			st = StatusHit
		} else {
			st = StatusMiss
		}
	case OpAdmit:
		if stage.Sheds(core.ValueMissFetch) {
			st = shedStatus(shedOK)
		} else {
			err := s.cache.Admit(cache.ObjectID(m.a), int64(m.b))
			if err == nil || errors.Is(err, cache.ErrTooLarge) {
				st = StatusOK
			} else {
				st = StatusError
			}
		}
	case OpStats:
		st = StatusOK
		a = uint64(s.meter.Requests)
		b = uint64(s.meter.Hits)
	case OpShed:
		if shedOK {
			st = StatusOK
			a = uint64(stage)
			burn := 0.0
			if s.shed != nil {
				burn = s.shed.Burn()
			}
			b = uint64(burn * 1e6)
		} else {
			st = StatusError
		}
	default:
		st = StatusError
	}
	s.reqs.Inc()
	if s.meter.Requests > 0 {
		s.hitRate.Set(float64(s.meter.Hits) / float64(s.meter.Requests))
	}
	s.mu.Unlock()
	if !opStart.IsZero() {
		s.emitOpSpan(m, st, sc, opStart)
	}
	//lint:ignore deadline response writes go to the kernel socket buffer of a loopback conn; a client that never drains is severed by Server.Close, and blocking here models a congested ISL rather than failing the frame
	return writeResponse(conn, buf, st, a, b)
}

// opName labels server-side operation spans.
func opName(op Op) string {
	switch op {
	case OpGet:
		return "get"
	case OpContains:
		return "contains"
	case OpAdmit:
		return "admit"
	case OpStats:
		return "stats"
	case OpShed:
		return "shed"
	default:
		return "op-" + strconv.Itoa(int(op))
	}
}

// emitOpSpan records one served cache operation as a child of the propagated
// client hop span. The measured wall time covers the cache operation under
// the server mutex — the server-side residency of the request, which
// -assemble subtracts from the client hop's wall time to attribute network
// versus serving cost.
func (s *Server) emitOpSpan(m message, st Status, sc *obs.SpanContext, start time.Time) {
	s.tracer.Emit(&obs.Span{ //lint:ignore hotalloc operation span is built only for sampled requests carrying a propagated trace context
		TraceID: sc.TraceString(),
		SpanID:  obs.SpanIDString(s.tracer.NewSpanID()),
		Parent:  obs.SpanIDString(sc.Parent),
		Proc:    s.proc,
		Kind:    opName(m.op),
		Hit:     st == StatusHit,
		Object:  m.a,
		WallMs:  float64(time.Since(start)) / float64(time.Millisecond),
	})
}

// Cluster is a set of satellite cache servers with a §3.4 availability
// model: servers can be killed mid-replay (their address then refuses
// connections, exactly as a crashed satellite's would) and revived later,
// optionally keeping their cache contents across the outage.
type Cluster struct {
	servers map[orbit.SatID]*Server
	// downAddr maps killed satellites to their last-known (now refusing)
	// address: clients keep dialing it and observe the failure themselves,
	// as on real hardware — there is no healthy-server oracle.
	downAddr map[orbit.SatID]string
	// survivors holds cache contents and meters across kill/revive.
	survivors map[orbit.SatID]ServerOptions
	kind      cache.Kind
	bytes     int64
	sopts     ServerOptions
	mu        sync.Mutex

	// obs handles (nil when observability is off).
	kills   *obs.Counter
	revives *obs.Counter
	live    *obs.Gauge
}

// NewCluster creates an empty cluster; servers spin up lazily per satellite,
// so a 1,296-slot constellation only costs listeners for satellites that
// actually serve traffic.
func NewCluster(kind cache.Kind, capacityBytes int64) (*Cluster, error) {
	return NewClusterOpts(kind, capacityBytes, ServerOptions{})
}

// NewClusterOpts creates a cluster whose servers share the given options
// (error log, server-side fault injector).
func NewClusterOpts(kind cache.Kind, capacityBytes int64, opts ServerOptions) (*Cluster, error) {
	if capacityBytes <= 0 {
		return nil, fmt.Errorf("replayer: capacity must be positive")
	}
	if opts.Cache != nil {
		return nil, fmt.Errorf("replayer: cluster options cannot carry a shared cache")
	}
	c := &Cluster{
		servers:   make(map[orbit.SatID]*Server),
		downAddr:  make(map[orbit.SatID]string),
		survivors: make(map[orbit.SatID]ServerOptions),
		kind:      kind,
		bytes:     capacityBytes,
		sopts:     opts,
	}
	if opts.Obs != nil {
		c.kills = opts.Obs.Counter("starcdn_cluster_kills_total")
		c.revives = opts.Obs.Counter("starcdn_cluster_revives_total")
		c.live = opts.Obs.Gauge("starcdn_cluster_live_servers")
	}
	return c, nil
}

// startLocked starts (or restarts) the server for id; callers hold c.mu.
func (c *Cluster) startLocked(id orbit.SatID) (*Server, error) {
	opts := c.sopts
	if sv, ok := c.survivors[id]; ok {
		opts.Cache = sv.Cache
		opts.Meter = sv.Meter
	}
	s, err := NewServerOpts(id, c.kind, c.bytes, opts)
	if err != nil {
		return nil, err
	}
	delete(c.survivors, id)
	delete(c.downAddr, id)
	c.servers[id] = s
	c.live.Set(float64(len(c.servers)))
	return s, nil
}

// Server returns (starting if needed) the server for a satellite. Killed
// satellites return an error until revived; use Addr to obtain the dialable
// (refusing) address of a down satellite.
func (c *Cluster) Server(id orbit.SatID) (*Server, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s, ok := c.servers[id]; ok {
		return s, nil
	}
	if _, down := c.downAddr[id]; down {
		return nil, fmt.Errorf("replayer: sat %d server is down", id)
	}
	return c.startLocked(id)
}

// Addr returns the dial address for a satellite. A killed satellite keeps
// returning its last-known address — which refuses connections — so clients
// experience the outage through the network, not through an API error.
// Unknown satellites lazily start a server, as Server does.
func (c *Cluster) Addr(id orbit.SatID) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if addr, ok := c.downAddr[id]; ok {
		return addr, nil
	}
	if s, ok := c.servers[id]; ok {
		return s.Addr(), nil
	}
	s, err := c.startLocked(id)
	if err != nil {
		return "", err
	}
	return s.Addr(), nil
}

// Down reports whether a satellite's server has been killed (and not yet
// revived).
func (c *Cluster) Down(id orbit.SatID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, down := c.downAddr[id]
	return down
}

// Kill crashes a satellite's cache server mid-replay: the listener closes,
// every in-flight connection is severed, and the address starts refusing
// dials. The cache contents survive for a later Revive (the §3.4 reboot:
// storage persists, the serving process does not). Killing a satellite that
// never started a server reserves a fresh loopback address and immediately
// releases it, so clients still observe connection-refused dials. Killing an
// already-down satellite is a no-op.
func (c *Cluster) Kill(id orbit.SatID) error {
	c.mu.Lock()
	s, running := c.servers[id]
	if running {
		delete(c.servers, id)
		c.downAddr[id] = s.Addr()
		c.survivors[id] = ServerOptions{Cache: s.cache, Meter: s.Meter()}
		c.kills.Inc()
		c.live.Set(float64(len(c.servers)))
	} else if _, down := c.downAddr[id]; !down {
		// Never started: bind and release a port so there is a concrete
		// address that refuses connections. (The kernel could hand the
		// port to a later listener; with ephemeral-port cycling this is
		// vanishingly rare within one replay, and the §3.4 degradation
		// path tolerates a mis-delivered connection as a stale answer.)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			c.mu.Unlock()
			return err
		}
		addr := ln.Addr().String()
		if err := ln.Close(); err != nil {
			c.mu.Unlock()
			return err
		}
		c.downAddr[id] = addr
		c.kills.Inc()
	}
	c.mu.Unlock()
	if running {
		// Closing outside c.mu: Close waits for handlers, and a handler
		// blocked on another cluster call must not deadlock the kill.
		return s.Close()
	}
	return nil
}

// Revive restarts a killed satellite's server on a fresh port, reattaching
// any cache contents that survived the outage. Reviving a live satellite is
// a no-op.
func (c *Cluster) Revive(id orbit.SatID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.servers[id]; ok {
		return nil
	}
	_, err := c.startLocked(id)
	if err == nil {
		c.revives.Inc()
	}
	return err
}

// Health snapshots the cluster's availability for the /healthz endpoint: OK
// iff no satellite server is currently killed, with the down list sorted by
// satellite ID.
func (c *Cluster) Health() obs.Health {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]int, 0, len(c.downAddr))
	for id := range c.downAddr {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	down := make([]string, len(ids))
	for i, id := range ids {
		down[i] = strconv.Itoa(id)
	}
	return obs.Health{OK: len(down) == 0, Live: len(c.servers), Down: down}
}

// Len returns the number of live servers.
func (c *Cluster) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.servers)
}

// Close stops every server, returning the first error encountered.
func (c *Cluster) Close() error {
	c.mu.Lock()
	servers := make([]*Server, 0, len(c.servers))
	for _, s := range c.servers {
		servers = append(servers, s)
	}
	c.servers = make(map[orbit.SatID]*Server)
	c.downAddr = make(map[orbit.SatID]string)
	c.survivors = make(map[orbit.SatID]ServerOptions)
	c.live.Set(0)
	c.mu.Unlock()
	var first error
	for _, s := range servers {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
