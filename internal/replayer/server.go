package replayer

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sync"

	"starcdn/internal/cache"
	"starcdn/internal/orbit"
)

// Server runs one satellite's cache behind a TCP listener.
type Server struct {
	id    orbit.SatID
	ln    net.Listener
	mu    sync.Mutex // serialises cache access across connections
	cache cache.Policy
	meter cache.Meter

	wg     sync.WaitGroup
	closed chan struct{}
}

// NewServer starts a cache server on a fresh loopback port.
func NewServer(id orbit.SatID, kind cache.Kind, capacity int64) (*Server, error) {
	c, err := cache.New(kind, capacity)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("replayer: listen: %w", err)
	}
	s := &Server{id: id, ln: ln, cache: c, closed: make(chan struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// ID returns the satellite this server represents.
func (s *Server) ID() orbit.SatID { return s.id }

// Meter returns a snapshot of the server-side hit accounting.
func (s *Server) Meter() cache.Meter {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.meter
}

// Close stops the listener and waits for connection handlers to finish.
func (s *Server) Close() error {
	close(s.closed)
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				log.Printf("replayer: sat %d accept: %v", s.id, err)
				return
			}
		}
		s.wg.Add(1)
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	// Handler exit means the client is gone; the close error carries no
	// information worth propagating.
	defer func() { _ = conn.Close() }()
	for {
		m, err := readFrame(conn)
		if err != nil {
			return // client closed or broken pipe; nothing to answer
		}
		if err := s.serveOne(conn, m); err != nil {
			return
		}
	}
}

func (s *Server) serveOne(conn net.Conn, m message) error {
	s.mu.Lock()
	var st Status
	var a, b uint64
	switch m.op {
	case OpGet:
		hit := s.cache.Get(cache.ObjectID(m.a))
		s.meter.Record(int64(m.b), hit)
		if hit {
			st = StatusHit
		} else {
			st = StatusMiss
		}
	case OpContains:
		if s.cache.Contains(cache.ObjectID(m.a)) {
			st = StatusHit
		} else {
			st = StatusMiss
		}
	case OpAdmit:
		err := s.cache.Admit(cache.ObjectID(m.a), int64(m.b))
		if err == nil || errors.Is(err, cache.ErrTooLarge) {
			st = StatusOK
		} else {
			st = StatusError
		}
	case OpStats:
		st = StatusOK
		a = uint64(s.meter.Requests)
		b = uint64(s.meter.Hits)
	default:
		st = StatusError
	}
	s.mu.Unlock()
	return writeResponse(conn, st, a, b)
}

// Cluster is a set of satellite cache servers.
type Cluster struct {
	servers map[orbit.SatID]*Server
	kind    cache.Kind
	bytes   int64
	mu      sync.Mutex
}

// NewCluster creates an empty cluster; servers spin up lazily per satellite,
// so a 1,296-slot constellation only costs listeners for satellites that
// actually serve traffic.
func NewCluster(kind cache.Kind, capacityBytes int64) (*Cluster, error) {
	if capacityBytes <= 0 {
		return nil, fmt.Errorf("replayer: capacity must be positive")
	}
	return &Cluster{
		servers: make(map[orbit.SatID]*Server),
		kind:    kind,
		bytes:   capacityBytes,
	}, nil
}

// Server returns (starting if needed) the server for a satellite.
func (c *Cluster) Server(id orbit.SatID) (*Server, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s, ok := c.servers[id]; ok {
		return s, nil
	}
	s, err := NewServer(id, c.kind, c.bytes)
	if err != nil {
		return nil, err
	}
	c.servers[id] = s
	return s, nil
}

// Len returns the number of live servers.
func (c *Cluster) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.servers)
}

// Close stops every server, returning the first error encountered.
func (c *Cluster) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var first error
	for _, s := range c.servers {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	c.servers = make(map[orbit.SatID]*Server)
	return first
}
