package replayer

import (
	"fmt"
	"sync"

	"starcdn/internal/cache"
	"starcdn/internal/core"
	"starcdn/internal/geo"
	"starcdn/internal/sched"
	"starcdn/internal/trace"
)

// ReplayConcurrent drives the trace through the TCP cluster with one worker
// goroutine per location, mirroring the paper's asynchronous multi-process
// replayer: each location replays its own request stream in order while the
// satellite cache servers serialise access per cache. Results can differ
// slightly from the sequential Replay because cross-location interleaving is
// no longer globally ordered — exactly as on real hardware.
func ReplayConcurrent(h *core.HashScheme, cluster *Cluster, users []geo.Point, tr *trace.Trace, opts Options) (cache.Meter, error) {
	var total cache.Meter
	if h == nil || cluster == nil {
		return total, fmt.Errorf("replayer: nil hash scheme or cluster")
	}
	if len(users) != len(tr.Locations) {
		return total, fmt.Errorf("replayer: %d users for %d locations", len(users), len(tr.Locations))
	}
	c := h.Grid().Constellation()
	// Scheduling decisions are precomputed sequentially (the scheduler is
	// not safe for concurrent use), then workers replay independently.
	scheduler, err := sched.New(c, users, opts.EpochSec, opts.Seed)
	if err != nil {
		return total, err
	}
	type job struct {
		req  *trace.Request
		home orbitSat
	}
	perLoc := make([][]job, len(users))
	for i := range tr.Requests {
		r := &tr.Requests[i]
		first, visible := scheduler.FirstContact(r.Location, r.TimeSec)
		home := first
		if visible && opts.Hashing {
			if owner, ok := h.Responsible(first, h.BucketOf(r.Object)); ok {
				home = owner
			}
		}
		if !visible {
			home = -1
		}
		perLoc[r.Location] = append(perLoc[r.Location], job{req: r, home: home})
	}

	// Pre-start every server that will be used, so workers never race on
	// lazy server construction.
	for _, jobs := range perLoc {
		for _, j := range jobs {
			if j.home < 0 {
				continue
			}
			if _, err := cluster.Server(j.home); err != nil {
				return total, err
			}
		}
	}

	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		runErr error
	)
	meters := make([]cache.Meter, len(users))
	for loc := range perLoc {
		if len(perLoc[loc]) == 0 {
			continue
		}
		wg.Add(1)
		go func(loc int) {
			defer wg.Done()
			client := NewClient()
			// Per-worker loopback pool; close errors after the worker's
			// stream completes cannot affect the meters.
			defer func() { _ = client.Close() }()
			m := &meters[loc]
			for _, j := range perLoc[loc] {
				if j.home < 0 {
					m.Record(j.req.Size, false)
					continue
				}
				srv, err := cluster.Server(j.home)
				if err != nil {
					setErr(&mu, &runErr, err)
					return
				}
				hit, err := client.Get(srv.Addr(), j.req.Object, j.req.Size)
				if err != nil {
					setErr(&mu, &runErr, err)
					return
				}
				if hit {
					m.Record(j.req.Size, true)
					continue
				}
				if opts.Relay {
					served, err := relayFetch(h, cluster, client, j.home, j.req, opts.Hashing)
					if err != nil {
						setErr(&mu, &runErr, err)
						return
					}
					if served {
						if err := client.Admit(srv.Addr(), j.req.Object, j.req.Size); err != nil {
							setErr(&mu, &runErr, err)
							return
						}
						m.Record(j.req.Size, true)
						continue
					}
				}
				if err := client.Admit(srv.Addr(), j.req.Object, j.req.Size); err != nil {
					setErr(&mu, &runErr, err)
					return
				}
				m.Record(j.req.Size, false)
			}
		}(loc)
	}
	wg.Wait()
	if runErr != nil {
		return total, runErr
	}
	for i := range meters {
		total.Merge(meters[i])
	}
	return total, nil
}

func setErr(mu *sync.Mutex, dst *error, err error) {
	mu.Lock()
	if *dst == nil {
		*dst = err
	}
	mu.Unlock()
}
