package replayer

import (
	"math"
	"sync"
	"time"

	"starcdn/internal/cache"
	"starcdn/internal/core"
	"starcdn/internal/geo"
	"starcdn/internal/obs"
	"starcdn/internal/sched"
	"starcdn/internal/shed"
	"starcdn/internal/sim"
	"starcdn/internal/trace"
)

// concurrentJob is one precomputed request assignment.
type concurrentJob struct {
	req   *trace.Request
	index int64 // global request index (drives deterministic trace sampling)
	home  orbitSat
	first orbitSat
	addr  string // empty when the request is accounted without contact
	// Overload-control decisions resolve in the sequential precompute (the
	// controller's clock and session table must advance in global request
	// order); workers only act them out.
	stage        shed.Stage
	shedReject   bool // stage ≥ 2 turned the session away
	shedRemote   bool // stage 3 rejects the remote-owner request outright
	directGround bool // stage ≥ 1 sheds the remote fetch
}

// ReplayConcurrent drives the trace through the TCP cluster with one worker
// goroutine per location, mirroring the paper's asynchronous multi-process
// replayer: each location replays its own request stream in order while the
// satellite cache servers serialise access per cache. Results can differ
// slightly from the sequential Replay because cross-location interleaving is
// no longer globally ordered — exactly as on real hardware.
//
// With Options.Failures the trace is processed in segments bounded by
// failure-event times: within a segment every worker runs concurrently;
// at a segment boundary the workers quiesce, the due events are applied
// (constellation availability flips, cluster servers are killed/revived,
// in-flight connections sever), and the replay resumes — so satellites
// genuinely crash mid-replay while the decision pipeline stays aligned with
// sim.Run's strictly time-ordered failure application.
func ReplayConcurrent(h *core.HashScheme, cluster *Cluster, users []geo.Point, tr *trace.Trace, opts Options) (cache.Meter, error) {
	var total cache.Meter
	if err := validate(h, cluster, users, tr, opts); err != nil {
		return total, err
	}
	c := h.Grid().Constellation()
	// Scheduling decisions are precomputed sequentially per segment (the
	// scheduler is not safe for concurrent use), then workers replay
	// independently.
	scheduler, err := sched.New(c, users, opts.EpochSec, opts.Seed)
	if err != nil {
		return total, err
	}
	fs, err := newSchedule(c, cluster, opts)
	if err != nil {
		return total, err
	}
	ro := newReplayObs(opts.Obs, opts.Sketches)

	// Per-location clients persist across segments so connection pools and
	// their retry state behave like long-lived terminal stacks.
	clients := make([]*Client, len(users))
	// Per-location sketch shards: each worker records into its own shard
	// without cross-worker coordination (the underlying summaries self-lock,
	// so a single owner pays only uncontended locks), and the segment barrier
	// below merges them into the shared instruments in location order — a
	// deterministic merge schedule, so the concurrent summaries are
	// independent of goroutine interleaving (and, below the eviction
	// threshold, identical to a sequential replay's).
	var shards []*popShard
	if ro.sketching() {
		shards = make([]*popShard, len(users))
		for i := range shards {
			shards[i] = newPopShard()
		}
	}
	defer func() {
		for _, cl := range clients {
			if cl != nil {
				// Close errors after the replay cannot affect the meters.
				_ = cl.Close()
			}
		}
	}()
	meters := make([]cache.Meter, len(users))
	if opts.Recorder != nil {
		stop := opts.Recorder.StartWall()
		defer stop()
	}

	var (
		mu     sync.Mutex
		runErr error
	)

	perLoc := make([][]concurrentJob, len(users))
	start := 0
	for start < len(tr.Requests) {
		// A segment runs up to (not including) the first request at or past
		// the next failure event, so events fire between segments exactly
		// where the sequential pipeline would fire them between requests.
		if err := fs.Advance(tr.Requests[start].TimeSec); err != nil {
			return total, err
		}
		end := len(tr.Requests)
		if next, ok := fs.NextEventTime(); ok {
			for end = start + 1; end < len(tr.Requests); end++ {
				if tr.Requests[end].TimeSec >= next {
					break
				}
			}
		}

		// Sequential precompute: homes, §3.4 degradations, and dial
		// addresses for this segment (server lazy-starts happen here, so
		// workers never race on construction).
		for i := range perLoc {
			perLoc[i] = perLoc[i][:0]
		}
		for i := start; i < end; i++ {
			r := &tr.Requests[i]
			// The controller clock and session table advance here, in global
			// request order, so shed decisions stay deterministic; only the
			// outcome feedback (Observe) arrives from the workers, which can
			// smear a signal into the next epoch — the same order looseness
			// concurrent replay already accepts for cache interleaving.
			if opts.Shedder != nil {
				opts.Shedder.Tick(r.TimeSec)
			}
			j := concurrentJob{req: r, index: int64(i), home: -1, first: -1}
			home, first, serve := homeFor(h, scheduler, fs, r, opts.Hashing)
			j.first = first
			if opts.Shedder != nil {
				j.stage = opts.Shedder.Stage()
				if first >= 0 && !opts.Shedder.AdmitSession(r.Location, r.TimeSec) {
					j.shedReject = true
					perLoc[r.Location] = append(perLoc[r.Location], j)
					continue
				}
			}
			if serve {
				if j.stage.Sheds(core.ValueRemoteFetch) && home != first {
					// Decided here so no server is lazily started for a
					// satellite never contacted. Stage 3 rejects the
					// remote-owner request outright (it cannot be a hit
					// without the shed ISL fetch); stages 1-2 serve the
					// §3.4-shaped ground miss instead.
					if j.stage.Sheds(core.ValueMissFetch) {
						j.shedRemote = true
					} else {
						j.directGround = true
					}
					j.home = home
					perLoc[r.Location] = append(perLoc[r.Location], j)
					continue
				}
				addr, err := cluster.Addr(home)
				if err != nil {
					return total, err
				}
				j.home, j.addr = home, addr
			}
			perLoc[r.Location] = append(perLoc[r.Location], j)
		}

		var wg sync.WaitGroup
		for loc := range perLoc {
			if len(perLoc[loc]) == 0 {
				continue
			}
			if clients[loc] == nil {
				clients[loc] = newReplayClient(opts)
			}
			wg.Add(1)
			go func(loc int) {
				defer wg.Done()
				client := clients[loc]
				m := &meters[loc]
				var ps *popShard
				if shards != nil {
					ps = shards[loc]
				}
				for _, j := range perLoc[loc] {
					rt := newReqTrace(opts, j.index, j.req, j.first)
					// BucketOf is a pure hash (safe to share across workers);
					// shed and degraded paths feed the bucket top-K exactly
					// like the sequential pipeline.
					bucket := -1
					if ps != nil && opts.Hashing {
						bucket = int(h.BucketOf(j.req.Object))
					}
					if j.shedReject {
						rt.addHop(obs.Hop{Kind: "shed", Sat: int(j.first)})
						finishReqTrace(opts.Tracer, rt, sim.SourceShed, time.Time{})
						ro.record(sim.SourceShed, j.req.Size)
						ps.record(j.req, j.index, -1, bucket, math.NaN(), rt.traceID())
						m.Record(j.req.Size, false)
						opts.Shedder.Observe(shed.Signal{Action: shed.ActionRejectSession})
						continue
					}
					if j.shedRemote {
						rt.addHop(obs.Hop{Kind: "shed", Sat: int(j.home)})
						finishReqTrace(opts.Tracer, rt, sim.SourceShed, time.Time{})
						ro.record(sim.SourceShed, j.req.Size)
						ps.record(j.req, j.index, j.home, bucket, math.NaN(), rt.traceID())
						m.Record(j.req.Size, false)
						opts.Shedder.Observe(shed.Signal{Action: shed.ActionHitOnly})
						continue
					}
					if j.directGround {
						rt.addHop(obs.Hop{Kind: "ground", Sat: -1})
						finishReqTrace(opts.Tracer, rt, sim.SourceGround, time.Time{})
						ro.record(sim.SourceGround, j.req.Size)
						ps.record(j.req, j.index, -1, bucket, math.NaN(), rt.traceID())
						m.Record(j.req.Size, false)
						opts.Shedder.Observe(shed.Signal{Action: shed.ActionDirectGround})
						continue
					}
					if j.home < 0 {
						src := degradedSource(j.first)
						rt.addHop(obs.Hop{Kind: "ground", Sat: -1})
						finishReqTrace(opts.Tracer, rt, src, time.Time{})
						ro.record(src, j.req.Size)
						ps.record(j.req, j.index, -1, bucket, math.NaN(), rt.traceID())
						m.Record(j.req.Size, false)
						if opts.Shedder != nil {
							opts.Shedder.Observe(shed.Signal{Degraded: src == sim.SourceGround})
						}
						continue
					}
					reqStart := time.Now()
					src, sig, err := serveRequest(h, cluster, client, j.home, j.first,
						j.addr, j.req, opts, j.stage, rt)
					if err != nil {
						setErr(&mu, &runErr, err)
						return
					}
					finishReqTrace(opts.Tracer, rt, src, reqStart)
					ro.record(src, j.req.Size)
					ps.record(j.req, j.index, j.home, bucket, wallMs(reqStart), rt.traceID())
					m.Record(j.req.Size, src.Hit())
					if opts.Shedder != nil {
						opts.Shedder.Observe(sig)
					}
				}
			}(loc)
		}
		wg.Wait()
		if runErr != nil {
			return total, runErr
		}
		// Segment barrier: fold every worker's sketch shard into the shared
		// instruments in location order (a fixed merge schedule — the
		// summaries cannot depend on which worker finished first), then reset
		// the shards for the next segment.
		if ro.sketching() {
			for _, ps := range shards {
				ro.pop.mergeShard(ps)
				ps.reset()
			}
		}
		start = end
	}

	for i := range meters {
		total.Merge(meters[i])
	}
	checkMeter(total, tr)
	return total, nil
}

func setErr(mu *sync.Mutex, dst *error, err error) {
	mu.Lock()
	if *dst == nil {
		*dst = err
	}
	mu.Unlock()
}
