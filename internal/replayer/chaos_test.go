package replayer

import (
	"reflect"
	"testing"
	"time"

	"starcdn/internal/cache"
	"starcdn/internal/obs"
	"starcdn/internal/sim"
)

// chaosFaultPolicy keeps chaos replays snappy: dead servers refuse dials
// immediately, so generous production timeouts would only slow the test.
func chaosFaultPolicy() *FaultPolicy {
	return &FaultPolicy{
		DialTimeout: 200 * time.Millisecond,
		IOTimeout:   200 * time.Millisecond,
		Retry:       RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond},
	}
}

// TestGenerateChaosDeterminism: the schedule is a pure function of its
// inputs — same seed yields a byte-identical event list, a different seed a
// different one, and candidate slice order is irrelevant.
func TestGenerateChaosDeterminism(t *testing.T) {
	h, users, tr := newReplayFixture(t, 2000, 31)
	opts := Options{Hashing: true, Relay: true, Seed: 99}
	sats := contactedSats(t, h, users, tr, opts)
	if len(sats) < 20 {
		t.Fatalf("fixture contacts only %d satellites", len(sats))
	}
	co := sim.ChaosOptions{
		StartSec: 100, EndSec: 900,
		KillFraction:      0.10,
		TransientFraction: 0.5,
		ReviveAfterSec:    200,
		Seed:              4242,
	}
	a := sim.GenerateChaos(sats, co)
	b := sim.GenerateChaos(sats, co)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	// Reversed candidate order must not matter: the generator sorts first.
	rev := make([]orbitSat, len(sats))
	for i, s := range sats {
		rev[len(sats)-1-i] = s
	}
	if c := sim.GenerateChaos(rev, co); !reflect.DeepEqual(a, c) {
		t.Fatal("candidate order changed the schedule")
	}
	co2 := co
	co2.Seed = 4243
	if d := sim.GenerateChaos(sats, co2); reflect.DeepEqual(a, d) {
		t.Fatal("different seeds produced identical schedules")
	}
	// Structural sanity: sorted by time, kills within the window, at least
	// 10% of candidates killed.
	kills := 0
	for i, ev := range a {
		if i > 0 && ev.TimeSec < a[i-1].TimeSec {
			t.Fatalf("schedule out of order at %d", i)
		}
		if ev.Down {
			kills++
			if ev.TimeSec < co.StartSec || ev.TimeSec >= co.EndSec {
				t.Errorf("kill at %v outside window", ev.TimeSec)
			}
		}
	}
	if want := (len(sats) + 9) / 10; kills < want {
		t.Errorf("killed %d of %d candidates, want >= %d", kills, len(sats), want)
	}
}

// TestChaosSequentialReplayMatchesSim is the chaos cross-check in its
// strictest form: under an identical §3.4 failure schedule the sequential
// TCP replay and the in-process simulator make the same decision for every
// request, so their hit sequences agree exactly — kills, remaps, transient
// miss-throughs and revivals included.
func TestChaosSequentialReplayMatchesSim(t *testing.T) {
	const requests = 6000
	const traceSeed = 31
	const capacity = 64 << 20
	const seed = 99

	// Two independent fixtures: failure schedules mutate constellation
	// availability, so the sim run and the TCP run each get their own.
	hSim, usersSim, trSim := newReplayFixture(t, requests, traceSeed)
	hTCP, usersTCP, trTCP := newReplayFixture(t, requests, traceSeed)

	opts := Options{Hashing: true, Relay: true, Seed: seed}
	sats := contactedSats(t, hTCP, usersTCP, trTCP, opts)
	events := sim.GenerateChaos(sats, sim.ChaosOptions{
		StartSec: 200, EndSec: 1000,
		KillFraction:      0.08, // > the 5% acceptance floor
		TransientFraction: 0.5,
		ReviveAfterSec:    250,
		Seed:              7,
	})
	if len(events) == 0 {
		t.Fatal("chaos generator produced no events")
	}

	pol := sim.NewStarCDN(hSim, sim.CacheConfig{Kind: cache.LRU, Bytes: capacity},
		sim.StarCDNOptions{Hashing: true, Relay: true})
	m1, err := sim.Run(hSim.Grid().Constellation(), usersSim, trSim, pol,
		sim.Config{Seed: seed, Failures: events})
	if err != nil {
		t.Fatal(err)
	}

	cluster, err := NewCluster(cache.LRU, capacity)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cluster.Close() }()
	opts.Fault = chaosFaultPolicy()
	opts.Failures = events
	m2, err := Replay(hTCP, cluster, usersTCP, trTCP, opts)
	if err != nil {
		t.Fatal(err)
	}

	if m1.Meter.Requests != m2.Requests {
		t.Fatalf("request counts differ: %d vs %d", m1.Meter.Requests, m2.Requests)
	}
	if m1.Meter.Hits != m2.Hits {
		t.Errorf("hit counts differ under chaos: sim %d vs TCP %d", m1.Meter.Hits, m2.Hits)
	}
	if m1.Meter.BytesHit != m2.BytesHit {
		t.Errorf("byte hits differ under chaos: %d vs %d", m1.Meter.BytesHit, m2.BytesHit)
	}
	if m2.Requests != int64(len(trTCP.Requests)) {
		t.Errorf("meter recorded %d of %d requests", m2.Requests, len(trTCP.Requests))
	}
	if m2.BytesHit+m2.BytesMissed != m2.BytesTotal {
		t.Errorf("byte accounting leak: %d + %d != %d", m2.BytesHit, m2.BytesMissed, m2.BytesTotal)
	}
	if m2.RequestHitRate() <= 0 {
		t.Error("chaos replay produced zero hit rate")
	}
}

// TestChaosConcurrentReplayCrossCheck is the acceptance chaos test: a seeded
// schedule kills >= 5% of contacted servers mid-replay; ReplayConcurrent must
// complete without error, account for every request and byte exactly, and
// land within two points of an identically-scheduled sim.Run.
func TestChaosConcurrentReplayCrossCheck(t *testing.T) {
	const requests = 6000
	const traceSeed = 13
	const capacity = 64 << 20
	const seed = 3

	hSim, usersSim, trSim := newReplayFixture(t, requests, traceSeed)
	hTCP, usersTCP, trTCP := newReplayFixture(t, requests, traceSeed)

	opts := Options{Hashing: true, Relay: true, Seed: seed}
	sats := contactedSats(t, hTCP, usersTCP, trTCP, opts)
	events := sim.GenerateChaos(sats, sim.ChaosOptions{
		StartSec: 200, EndSec: 1000,
		KillFraction:      0.08,
		TransientFraction: 0.5,
		ReviveAfterSec:    250,
		Seed:              11,
	})
	killed := 0
	for _, ev := range events {
		if ev.Down {
			killed++
		}
	}
	if killed*20 < len(sats) {
		t.Fatalf("schedule kills %d of %d contacted sats, below the 5%% floor", killed, len(sats))
	}

	pol := sim.NewStarCDN(hSim, sim.CacheConfig{Kind: cache.LRU, Bytes: capacity},
		sim.StarCDNOptions{Hashing: true, Relay: true})
	m1, err := sim.Run(hSim.Grid().Constellation(), usersSim, trSim, pol,
		sim.Config{Seed: seed, Failures: events})
	if err != nil {
		t.Fatal(err)
	}

	cluster, err := NewCluster(cache.LRU, capacity)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cluster.Close() }()
	opts.Fault = chaosFaultPolicy()
	opts.Failures = events
	m2, err := ReplayConcurrent(hTCP, cluster, usersTCP, trTCP, opts)
	if err != nil {
		t.Fatalf("concurrent chaos replay errored: %v", err)
	}

	// Exact accounting even though servers were killed mid-replay.
	if m2.Requests != int64(len(trTCP.Requests)) {
		t.Errorf("meter recorded %d of %d requests", m2.Requests, len(trTCP.Requests))
	}
	if m2.BytesHit+m2.BytesMissed != m2.BytesTotal {
		t.Errorf("byte accounting leak: %d + %d != %d", m2.BytesHit, m2.BytesMissed, m2.BytesTotal)
	}
	// Interleaving differs across workers, so hit rates agree approximately.
	d := m2.RequestHitRate() - m1.Meter.RequestHitRate()
	if d < -0.02 || d > 0.02 {
		t.Errorf("chaos RHR %.4f deviates from sim %.4f by more than 2 points",
			m2.RequestHitRate(), m1.Meter.RequestHitRate())
	}
	if m2.RequestHitRate() <= 0 {
		t.Error("concurrent chaos replay produced no hits")
	}
}

// TestChaosWithInjectedNetworkFaults layers deterministic wire-level faults
// (resets, stalls, refused dials, truncated frames) on top of a kill
// schedule. The replay must still complete with exact request/byte
// accounting — injected faults degrade individual requests to ground misses,
// never corrupt the meters.
func TestChaosWithInjectedNetworkFaults(t *testing.T) {
	const requests = 4000
	const capacity = 64 << 20

	h, users, tr := newReplayFixture(t, requests, 47)
	opts := Options{Hashing: true, Relay: true, Seed: 5}
	sats := contactedSats(t, h, users, tr, opts)
	events := sim.GenerateChaos(sats, sim.ChaosOptions{
		StartSec: 200, EndSec: 1000,
		KillFraction:      0.06,
		TransientFraction: 0.5,
		ReviveAfterSec:    250,
		Seed:              23,
	})

	inj := NewFaultInjector(FaultConfig{
		Seed:         77,
		RefuseRate:   0.01,
		ResetRate:    0.005,
		StallRate:    0.002,
		TruncateRate: 0.002,
		StallFor:     150 * time.Millisecond,
	})
	reg := obs.NewRegistry()
	cluster, err := NewCluster(cache.LRU, capacity)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cluster.Close() }()
	opts.Fault = &FaultPolicy{
		DialTimeout: 100 * time.Millisecond,
		IOTimeout:   100 * time.Millisecond,
		Retry:       RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond},
		Injector:    inj,
	}
	opts.Failures = events
	opts.Obs = reg

	m, err := ReplayConcurrent(h, cluster, users, tr, opts)
	if err != nil {
		t.Fatalf("chaos replay with injected faults errored: %v", err)
	}
	// The time-bounded generator may emit slightly fewer requests than asked;
	// exact accounting means one meter entry per generated request.
	if m.Requests != int64(len(tr.Requests)) {
		t.Errorf("meter recorded %d of %d requests", m.Requests, len(tr.Requests))
	}
	if m.BytesHit+m.BytesMissed != m.BytesTotal {
		t.Errorf("byte accounting leak: %d + %d != %d", m.BytesHit, m.BytesMissed, m.BytesTotal)
	}
	if m.RequestHitRate() <= 0 {
		t.Error("replay under injected faults produced no hits")
	}
	st := inj.Stats()
	if st.Dials == 0 || st.Wrapped == 0 {
		t.Errorf("injector saw no traffic: %+v", st)
	}
	if st.Refused+st.Resets+st.Stalls+st.Truncations == 0 {
		t.Errorf("injector fired no faults: %+v", st)
	}
	// Rejection classification stays consistent under chaos: no shedder ran
	// so nothing may be counted as shed, and the classified rejections
	// (deadline, refused) never exceed the terminal failures they subset.
	if got := counterValue(reg, `starcdn_client_rejected_total{reason="shed"}`); got != 0 {
		t.Errorf("rejected{shed} = %.0f without a shedder", got)
	}
	classified := counterValue(reg, `starcdn_client_rejected_total{reason="deadline"}`) +
		counterValue(reg, `starcdn_client_rejected_total{reason="refused"}`)
	if failures := counterValue(reg, "starcdn_client_failures_total"); classified > failures {
		t.Errorf("classified rejections %.0f exceed terminal failures %.0f", classified, failures)
	}
}

// TestClientRejectedRefusedCounter: a dead address (every dial refused) is a
// terminal failure classified under rejected_total{reason="refused"} — both
// for injected refusals and for a real listener that is gone.
func TestClientRejectedRefusedCounter(t *testing.T) {
	inj := NewFaultInjector(FaultConfig{Seed: 2, RefuseRate: 1.0})
	reg := obs.NewRegistry()
	cl := NewClientOpts(ClientOptions{
		DialTimeout: 100 * time.Millisecond,
		Retry:       RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond},
		Dial:        inj.Dialer(),
		Obs:         reg,
	})
	defer func() { _ = cl.Close() }()
	if _, err := cl.Get("127.0.0.1:1", 5, 10); err == nil {
		t.Fatal("refused dial succeeded")
	}
	if got := counterValue(reg, `starcdn_client_rejected_total{reason="refused"}`); got != 1 {
		t.Errorf("rejected{refused} = %.0f, want 1", got)
	}

	// Real refusal: a server that was closed keeps its address but refuses.
	s, err := NewServerOpts(6, cache.LRU, 1<<20, ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	reg2 := obs.NewRegistry()
	cl2 := NewClientOpts(ClientOptions{
		DialTimeout: 100 * time.Millisecond,
		Retry:       RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond},
		Obs:         reg2,
	})
	defer func() { _ = cl2.Close() }()
	if _, err := cl2.Get(addr, 5, 10); err == nil {
		t.Fatal("dial of closed server succeeded")
	}
	if got := counterValue(reg2, `starcdn_client_rejected_total{reason="refused"}`); got != 1 {
		t.Errorf("real refusal rejected{refused} = %.0f, want 1", got)
	}
}

// TestClientRejectedDeadlineCounter: a server stalled past the I/O deadline
// on every attempt is a terminal failure classified under
// starcdn_client_rejected_total{reason="deadline"}.
func TestClientRejectedDeadlineCounter(t *testing.T) {
	inj := NewFaultInjector(FaultConfig{
		Seed:      1,
		StallRate: 1.0,
		StallFor:  time.Second,
	})
	s, err := NewServerOpts(1, cache.LRU, 1<<20, ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()
	reg := obs.NewRegistry()
	cl := NewClientOpts(ClientOptions{
		DialTimeout: 100 * time.Millisecond,
		IOTimeout:   50 * time.Millisecond,
		Retry:       RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond},
		Dial:        inj.Dialer(),
		Obs:         reg,
	})
	defer func() { _ = cl.Close() }()
	if _, err := cl.Get(s.Addr(), 5, 10); err == nil {
		t.Fatal("stalled server answered")
	}
	if got := counterValue(reg, `starcdn_client_rejected_total{reason="deadline"}`); got != 1 {
		t.Errorf("rejected{deadline} = %.0f, want 1", got)
	}
	if got := counterValue(reg, "starcdn_client_failures_total"); got != 1 {
		t.Errorf("failures = %.0f, want 1", got)
	}
}
