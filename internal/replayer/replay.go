package replayer

import (
	"fmt"
	"time"

	"starcdn/internal/cache"
	"starcdn/internal/core"
	"starcdn/internal/geo"
	"starcdn/internal/invariant"
	"starcdn/internal/obs"
	"starcdn/internal/orbit"
	"starcdn/internal/sched"
	"starcdn/internal/sim"
	"starcdn/internal/topo"
	"starcdn/internal/trace"
)

// orbitSat shortens the satellite ID type in this file's signatures.
type orbitSat = orbit.SatID

// FaultPolicy enables fault-tolerant operation: per-frame I/O deadlines,
// bounded dials, and retry with seeded jittered backoff. When a satellite
// server stays unreachable past the retry budget the replayer applies the
// paper's §3.4 degradation — the request is recorded as a miss served from
// the ground (a transient outage from the client's point of view) and the
// replay continues; it never errors out because one satellite died.
type FaultPolicy struct {
	// DialTimeout caps each dial attempt (0 selects 250ms).
	DialTimeout time.Duration
	// IOTimeout is the per-frame read/write deadline (0 selects 250ms).
	IOTimeout time.Duration
	// Retry bounds attempts and backoff; the zero value selects
	// DefaultRetryPolicy (3 attempts, 2ms..50ms jittered backoff).
	Retry RetryPolicy
	// Injector, when non-nil, adds deterministic client-side fault
	// injection (refused dials, resets, stalls, truncated frames) in front
	// of every connection.
	Injector *FaultInjector
}

// defaultFaultTimeout bounds dials and frame exchanges when the caller
// enables fault tolerance without picking timeouts. Loopback round trips
// are microseconds, so 250ms cleanly separates "slow" from "dead" without
// making a chaos replay crawl.
const defaultFaultTimeout = 250 * time.Millisecond

// clientOptions lowers the policy into ClientOptions.
func (p *FaultPolicy) clientOptions(seed int64) ClientOptions {
	o := ClientOptions{Seed: seed}
	if p == nil {
		return o
	}
	o.DialTimeout = p.DialTimeout
	if o.DialTimeout <= 0 {
		o.DialTimeout = defaultFaultTimeout
	}
	o.IOTimeout = p.IOTimeout
	if o.IOTimeout <= 0 {
		o.IOTimeout = defaultFaultTimeout
	}
	o.Retry = p.Retry
	if o.Retry.MaxAttempts == 0 {
		o.Retry = DefaultRetryPolicy()
	}
	if p.Injector != nil {
		o.Dial = p.Injector.Dialer()
	}
	return o
}

// Options configures a distributed replay.
type Options struct {
	Hashing  bool
	Relay    bool
	EpochSec float64
	Seed     int64
	// Fault enables fault-tolerant operation (deadlines, retries, §3.4
	// degradation). Nil preserves the legacy fail-fast behaviour: the
	// first network error aborts the replay.
	Fault *FaultPolicy
	// Failures is a time-ordered §3.4 failure schedule applied as the
	// trace replays: each event deactivates/reactivates the satellite in
	// the constellation AND kills/revives its cluster server, in lockstep
	// with how sim.Run applies Config.Failures — which is what makes the
	// two pipelines cross-checkable under identical chaos. Transient
	// outages degrade to ground miss-throughs; long-term ones remap
	// buckets via core.HashScheme. Non-empty Failures require Fault.
	Failures []sim.FailureEvent
	// Obs, when non-nil, receives the replay-level per-source request and
	// byte counters (starcdn_replay_*). Pass the same registry in the
	// cluster's ServerOptions.Obs and here to get server-, client-, and
	// replay-level series on one exposition.
	Obs *obs.Registry
	// Tracer, when non-nil, emits one JSONL span per sampled request with
	// wall-clock per-hop latencies measured around the real TCP exchanges.
	Tracer *obs.Tracer
}

// newReplayClient builds the client matching the options.
func newReplayClient(opts Options) *Client {
	co := opts.Fault.clientOptions(opts.Seed)
	co.Obs = opts.Obs
	return NewClientOpts(co)
}

// validate performs the shared option/argument checks.
func validate(h *core.HashScheme, cluster *Cluster, users []geo.Point, tr *trace.Trace, opts Options) error {
	if h == nil || cluster == nil {
		return fmt.Errorf("replayer: nil hash scheme or cluster")
	}
	if len(users) != len(tr.Locations) {
		return fmt.Errorf("replayer: %d users for %d locations", len(users), len(tr.Locations))
	}
	if len(opts.Failures) > 0 && opts.Fault == nil {
		return fmt.Errorf("replayer: a failure schedule requires a FaultPolicy")
	}
	return nil
}

// newSchedule binds the failure schedule to the constellation and wires the
// kill/revive hook into the cluster.
func newSchedule(c *orbit.Constellation, cluster *Cluster, opts Options) (*sim.FailureSchedule, error) {
	fs, err := sim.NewFailureSchedule(c, opts.Failures)
	if err != nil {
		return nil, err
	}
	fs.OnApply(func(ev sim.FailureEvent) error {
		if ev.Down {
			return cluster.Kill(ev.Sat)
		}
		return cluster.Revive(ev.Sat)
	})
	return fs, nil
}

// homeFor resolves where a request is served: the first-contact satellite,
// or — with hashing — the bucket owner under the §3.4 failure policy.
// serve=false means the request is accounted as a ground miss without
// contacting any satellite: either no satellite is visible (first == -1), or
// the owner is in a transient outage (miss-through, first >= 0).
func homeFor(h *core.HashScheme, scheduler *sched.Scheduler, fs *sim.FailureSchedule,
	r *trace.Request, hashing bool) (home, first orbitSat, serve bool) {
	first, visible := scheduler.FirstContact(r.Location, r.TimeSec)
	if !visible {
		return -1, -1, false
	}
	if !hashing {
		return first, first, true
	}
	home, serve = h.ServingOwner(first, h.BucketOf(r.Object), fs.TransientDown)
	return home, first, serve
}

// degradedSource classifies a request that never contacts a satellite:
// no coverage when nothing is visible, otherwise a §3.4 ground miss-through.
func degradedSource(first orbitSat) sim.Source {
	if first < 0 {
		return sim.SourceNoCover
	}
	return sim.SourceGround
}

// wallMs measures elapsed wall-clock milliseconds since start.
func wallMs(start time.Time) float64 {
	return float64(time.Since(start)) / float64(time.Millisecond)
}

// serveRequest replays one request against the cluster over TCP and reports
// where it was served from, mirroring sim.StarCDN's Source taxonomy. With
// fault tolerance enabled, network failures degrade per §3.4 instead of
// erroring: an unreachable owner is a ground miss, an unreachable relay
// neighbour is skipped, and a failed admit merely leaves the object
// uncached. When span is non-nil each TCP exchange appends a hop with its
// measured wall-clock latency.
func serveRequest(h *core.HashScheme, cluster *Cluster, client *Client,
	home, first orbitSat, addr string, r *trace.Request, opts Options,
	span *obs.Span) (sim.Source, error) {
	faulty := opts.Fault != nil
	ownerStart := time.Now()
	hit, err := client.Get(addr, r.Object, r.Size)
	span.AddHop(obs.Hop{Kind: "owner", Sat: int(home), WallMs: wallMs(ownerStart)})
	if err != nil {
		if !faulty {
			return sim.SourceGround, err
		}
		return sim.SourceGround, nil // owner unreachable: §3.4 miss-through
	}
	if hit {
		if home == first {
			return sim.SourceLocal, nil
		}
		return sim.SourceBucket, nil
	}
	if opts.Relay {
		src, served, err := relayFetch(h, cluster, client, home, r, opts.Hashing, faulty, span)
		if err != nil {
			return sim.SourceGround, err
		}
		if served {
			// Store a copy at the owner for future local hits.
			if err := client.Admit(addr, r.Object, r.Size); err != nil && !faulty {
				return src, err
			}
			return src, nil
		}
	}
	// Ground fetch; the owner caches the object on the way through.
	groundStart := time.Now()
	err = client.Admit(addr, r.Object, r.Size)
	span.AddHop(obs.Hop{Kind: "ground", Sat: int(home), WallMs: wallMs(groundStart)})
	if err != nil && !faulty {
		return sim.SourceGround, err
	}
	return sim.SourceGround, nil
}

// checkMeter asserts exact byte accounting after a completed replay: every
// trace request is recorded exactly once, hits and misses partition the
// bytes. Armed only in starcdn_debug builds.
func checkMeter(m cache.Meter, tr *trace.Trace) {
	if invariant.Enabled {
		invariant.Assertf(m.Requests == int64(len(tr.Requests)),
			"replayer: meter recorded %d of %d requests", m.Requests, len(tr.Requests))
		invariant.Assertf(m.BytesHit+m.BytesMissed == m.BytesTotal,
			"replayer: byte accounting leak: hit %d + missed %d != total %d",
			m.BytesHit, m.BytesMissed, m.BytesTotal)
	}
}

// Replay drives a trace through a TCP cluster using StarCDN's request flow:
// schedule a first-contact satellite, route to the bucket owner, Get over
// TCP, relay-fetch from same-bucket neighbours on a miss, and Admit on the
// way back from the ground. It implements the same decision pipeline as
// sim.StarCDN so the two can be cross-validated request for request — with
// Options.Failures, kill for kill.
func Replay(h *core.HashScheme, cluster *Cluster, users []geo.Point, tr *trace.Trace, opts Options) (cache.Meter, error) {
	var meter cache.Meter
	if err := validate(h, cluster, users, tr, opts); err != nil {
		return meter, err
	}
	c := h.Grid().Constellation()
	scheduler, err := sched.New(c, users, opts.EpochSec, opts.Seed)
	if err != nil {
		return meter, err
	}
	fs, err := newSchedule(c, cluster, opts)
	if err != nil {
		return meter, err
	}
	client := newReplayClient(opts)
	// Pooled loopback connections; a close error after a completed replay
	// cannot invalidate the measured meter.
	defer func() { _ = client.Close() }()
	ro := newReplayObs(opts.Obs)

	for i := range tr.Requests {
		r := &tr.Requests[i]
		if err := fs.Advance(r.TimeSec); err != nil {
			return meter, err
		}
		home, first, serveSat := homeFor(h, scheduler, fs, r, opts.Hashing)
		span := newReplaySpan(opts.Tracer, int64(i), r, first)
		if !serveSat {
			src := degradedSource(first)
			finishReplaySpan(opts.Tracer, span, src, time.Time{})
			ro.record(src, r.Size)
			meter.Record(r.Size, false)
			continue
		}
		addr, err := cluster.Addr(home)
		if err != nil {
			return meter, err
		}
		reqStart := time.Now()
		src, err := serveRequest(h, cluster, client, home, first, addr, r, opts, span)
		if err != nil {
			return meter, err
		}
		finishReplaySpan(opts.Tracer, span, src, reqStart)
		ro.record(src, r.Size)
		meter.Record(r.Size, src.Hit())
	}
	checkMeter(meter, tr)
	return meter, nil
}

// newReplaySpan starts the trace span for request index i, or returns nil
// when the request is not sampled.
func newReplaySpan(tr *obs.Tracer, i int64, r *trace.Request, first orbitSat) *obs.Span {
	if !tr.Sampled(i) {
		return nil
	}
	span := &obs.Span{Req: i, TimeSec: r.TimeSec, Loc: r.Location,
		Object: uint64(r.Object), Size: r.Size}
	if first >= 0 {
		span.AddHop(obs.Hop{Kind: "first-contact", Sat: int(first)})
	}
	return span
}

// finishReplaySpan stamps the outcome on a span and emits it. A zero start
// means the request never contacted a satellite (no wall time to measure).
func finishReplaySpan(tr *obs.Tracer, span *obs.Span, src sim.Source, start time.Time) {
	if span == nil {
		return
	}
	span.Source = src.String()
	span.Hit = src.Hit()
	if !start.IsZero() {
		span.WallMs = wallMs(start)
	}
	tr.Emit(span)
}

// relayFetch checks the west then east same-bucket neighbours over TCP,
// mirroring sim.StarCDN's relayed fetch (west first, then east). With fault
// tolerance, an unreachable neighbour is treated exactly like an absent one
// (§3.4): skip it and try the other direction. On success the returned
// source identifies the serving direction (relay-west/relay-east).
func relayFetch(h *core.HashScheme, cluster *Cluster, client *Client, home orbitSat,
	r *trace.Request, hashing, faulty bool, span *obs.Span) (sim.Source, bool, error) {
	for _, d := range []topo.Direction{topo.West, topo.East} {
		src := sim.SourceRelayWest
		if d == topo.East {
			src = sim.SourceRelayEast
		}
		var nb orbitSat
		var ok bool
		if hashing {
			nb, ok = h.RelayNeighbor(home, d)
		} else {
			nb = h.Grid().Neighbor(home, d)
			ok = h.Grid().Constellation().Active(nb)
		}
		if !ok {
			continue
		}
		addr, err := cluster.Addr(nb)
		if err != nil {
			return src, false, err
		}
		relayStart := time.Now()
		has, err := client.Contains(addr, r.Object)
		if err != nil {
			if faulty {
				continue // neighbour unreachable ≈ no relay copy available
			}
			return src, false, err
		}
		if has {
			// Touch the serving neighbour (recency) as sim does.
			if _, err := client.Get(addr, r.Object, r.Size); err != nil {
				if faulty {
					continue
				}
				return src, false, err
			}
			span.AddHop(obs.Hop{Kind: src.String(), Sat: int(nb),
				WallMs: wallMs(relayStart)})
			return src, true, nil
		}
	}
	return sim.SourceGround, false, nil
}
