package replayer

import (
	"errors"
	"fmt"
	"math"
	"time"

	"starcdn/internal/cache"
	"starcdn/internal/core"
	"starcdn/internal/geo"
	"starcdn/internal/invariant"
	"starcdn/internal/obs"
	"starcdn/internal/orbit"
	"starcdn/internal/sched"
	"starcdn/internal/shed"
	"starcdn/internal/sim"
	"starcdn/internal/topo"
	"starcdn/internal/trace"
)

// orbitSat shortens the satellite ID type in this file's signatures.
type orbitSat = orbit.SatID

// FaultPolicy enables fault-tolerant operation: per-frame I/O deadlines,
// bounded dials, and retry with seeded jittered backoff. When a satellite
// server stays unreachable past the retry budget the replayer applies the
// paper's §3.4 degradation — the request is recorded as a miss served from
// the ground (a transient outage from the client's point of view) and the
// replay continues; it never errors out because one satellite died.
type FaultPolicy struct {
	// DialTimeout caps each dial attempt (0 selects 250ms).
	DialTimeout time.Duration
	// IOTimeout is the per-frame read/write deadline (0 selects 250ms).
	IOTimeout time.Duration
	// Retry bounds attempts and backoff; the zero value selects
	// DefaultRetryPolicy (3 attempts, 2ms..50ms jittered backoff).
	Retry RetryPolicy
	// Injector, when non-nil, adds deterministic client-side fault
	// injection (refused dials, resets, stalls, truncated frames) in front
	// of every connection.
	Injector *FaultInjector
}

// defaultFaultTimeout bounds dials and frame exchanges when the caller
// enables fault tolerance without picking timeouts. Loopback round trips
// are microseconds, so 250ms cleanly separates "slow" from "dead" without
// making a chaos replay crawl.
const defaultFaultTimeout = 250 * time.Millisecond

// clientOptions lowers the policy into ClientOptions.
func (p *FaultPolicy) clientOptions(seed int64) ClientOptions {
	o := ClientOptions{Seed: seed}
	if p == nil {
		return o
	}
	o.DialTimeout = p.DialTimeout
	if o.DialTimeout <= 0 {
		o.DialTimeout = defaultFaultTimeout
	}
	o.IOTimeout = p.IOTimeout
	if o.IOTimeout <= 0 {
		o.IOTimeout = defaultFaultTimeout
	}
	o.Retry = p.Retry
	if o.Retry.MaxAttempts == 0 {
		o.Retry = DefaultRetryPolicy()
	}
	if p.Injector != nil {
		o.Dial = p.Injector.Dialer()
	}
	return o
}

// Options configures a distributed replay.
type Options struct {
	Hashing  bool
	Relay    bool
	EpochSec float64
	Seed     int64
	// Fault enables fault-tolerant operation (deadlines, retries, §3.4
	// degradation). Nil preserves the legacy fail-fast behaviour: the
	// first network error aborts the replay.
	Fault *FaultPolicy
	// Failures is a time-ordered §3.4 failure schedule applied as the
	// trace replays: each event deactivates/reactivates the satellite in
	// the constellation AND kills/revives its cluster server, in lockstep
	// with how sim.Run applies Config.Failures — which is what makes the
	// two pipelines cross-checkable under identical chaos. Transient
	// outages degrade to ground miss-throughs; long-term ones remap
	// buckets via core.HashScheme. Non-empty Failures require Fault.
	Failures []sim.FailureEvent
	// Obs, when non-nil, receives the replay-level per-source request and
	// byte counters (starcdn_replay_*). Pass the same registry in the
	// cluster's ServerOptions.Obs and here to get server-, client-, and
	// replay-level series on one exposition.
	Obs *obs.Registry
	// Sketches opts in to streaming-sketch telemetry on the Obs registry
	// (no-op when Obs is nil): the same top-K popularity summaries sim.Run
	// builds (starcdn_popularity_*, identical names and keys, so a replay
	// and a sim run of one seed produce identical top-K entries) plus a
	// wall-clock latency quantile sketch (starcdn_sketch_replay_wall_ms)
	// over the requests actually served over TCP. Sketch updates never touch
	// the seeded simulation streams, so results are identical on or off; in
	// ReplayConcurrent each worker records into a private shard merged at
	// segment barriers in location order, so the concurrent summaries equal
	// the sequential ones.
	Sketches bool
	// Tracer, when non-nil, emits one JSONL span per sampled request with
	// wall-clock per-hop latencies measured around the real TCP exchanges.
	Tracer *obs.Tracer
	// Propagate enables protocol-v2 trace propagation: sampled requests
	// carry their trace context (trace ID, hop span ID, sampled bit) to the
	// satellite servers, whose per-operation spans then join the client's
	// distributed trace (stitched back together by starcdn-trace -assemble).
	// Requires Tracer; v1 servers negotiate the capability away and the
	// replay proceeds as plain v1. Propagation never touches the seeded
	// simulation streams — trace identity is a pure function of (tracer
	// seed, request index).
	Propagate bool
	// Recorder, when non-nil, is ticked on wall-clock epochs for the
	// duration of the replay, turning the Obs registry into a queryable
	// flight-recorder time series (see obs.Recorder).
	Recorder *obs.Recorder
	// Phases, when non-nil, attributes each round trip's wall-clock cost to
	// the replay stages (dial+hello, frame write, frame read, retry
	// backoff) as starcdn_phase_stage_seconds{pipeline="replay"} histograms.
	// Build it with obs.NewReplayPhases; bind it to Recorder (BindRecorder)
	// to flush per wall-clock epoch. Like Obs, it cannot change behaviour.
	Phases *obs.PhaseProfiler
	// Shedder, when non-nil, closes the overload-control loop on the client
	// side of the wire: ticked on trace time before each request, consulted
	// for session admission and the active stage, and fed each outcome —
	// the same contract sim.Config.Shedder follows, so a sequential replay
	// and a sim run sharing a seed and shed config shed the identical
	// request set. Pass the same controller in the cluster's
	// ServerOptions.Shedder to also enforce it at the wire (StatusShed).
	Shedder *shed.Controller
}

// newReplayClient builds the client matching the options.
func newReplayClient(opts Options) *Client {
	co := opts.Fault.clientOptions(opts.Seed)
	co.Obs = opts.Obs
	co.Tracer = opts.Tracer
	co.Propagate = opts.Propagate
	co.Shed = opts.Shedder != nil
	co.Phases = opts.Phases
	return NewClientOpts(co)
}

// validate performs the shared option/argument checks.
func validate(h *core.HashScheme, cluster *Cluster, users []geo.Point, tr *trace.Trace, opts Options) error {
	if h == nil || cluster == nil {
		return fmt.Errorf("replayer: nil hash scheme or cluster")
	}
	if len(users) != len(tr.Locations) {
		return fmt.Errorf("replayer: %d users for %d locations", len(users), len(tr.Locations))
	}
	if len(opts.Failures) > 0 && opts.Fault == nil {
		return fmt.Errorf("replayer: a failure schedule requires a FaultPolicy")
	}
	return nil
}

// newSchedule binds the failure schedule to the constellation and wires the
// kill/revive hook into the cluster.
func newSchedule(c *orbit.Constellation, cluster *Cluster, opts Options) (*sim.FailureSchedule, error) {
	fs, err := sim.NewFailureSchedule(c, opts.Failures)
	if err != nil {
		return nil, err
	}
	fs.OnApply(func(ev sim.FailureEvent) error {
		if ev.Down {
			return cluster.Kill(ev.Sat)
		}
		return cluster.Revive(ev.Sat)
	})
	return fs, nil
}

// homeFor resolves where a request is served: the first-contact satellite,
// or — with hashing — the bucket owner under the §3.4 failure policy.
// serve=false means the request is accounted as a ground miss without
// contacting any satellite: either no satellite is visible (first == -1), or
// the owner is in a transient outage (miss-through, first >= 0).
func homeFor(h *core.HashScheme, scheduler *sched.Scheduler, fs *sim.FailureSchedule,
	r *trace.Request, hashing bool) (home, first orbitSat, serve bool) {
	first, visible := scheduler.FirstContact(r.Location, r.TimeSec)
	if !visible {
		return -1, -1, false
	}
	if !hashing {
		return first, first, true
	}
	home, serve = h.ServingOwner(first, h.BucketOf(r.Object), fs.TransientDown)
	return home, first, serve
}

// degradedSource classifies a request that never contacts a satellite:
// no coverage when nothing is visible, otherwise a §3.4 ground miss-through.
func degradedSource(first orbitSat) sim.Source {
	if first < 0 {
		return sim.SourceNoCover
	}
	return sim.SourceGround
}

// wallMs measures elapsed wall-clock milliseconds since start.
func wallMs(start time.Time) float64 {
	return float64(time.Since(start)) / float64(time.Millisecond)
}

// serveRequest replays one request against the cluster over TCP and reports
// where it was served from, mirroring sim.StarCDN's Source taxonomy. With
// fault tolerance enabled, network failures degrade per §3.4 instead of
// erroring: an unreachable owner is a ground miss, an unreachable relay
// neighbour is skipped, and a failed admit merely leaves the object
// uncached. When span is non-nil each TCP exchange appends a hop with its
// measured wall-clock latency.
//
// stage applies the client side of overload control — relay probes are
// skipped at stage ≥ 1 — while the wire answers the rest: an owner miss at
// stage ≥ 3 comes back as StatusShed (shed.ErrShed here), which is a served
// refusal, not a fault. The returned shed.Signal is the controller feedback
// matching sim.Run's: Degraded marks the §3.4 miss-through, Action what
// shedding did to the request.
func serveRequest(h *core.HashScheme, cluster *Cluster, client *Client,
	home, first orbitSat, addr string, r *trace.Request, opts Options,
	stage shed.Stage, rt *reqTrace) (sim.Source, shed.Signal, error) {
	faulty := opts.Fault != nil
	ownerStart := time.Now()
	sc, hopID := rt.nextHop()
	hit, err := client.GetCtx(addr, r.Object, r.Size, sc)
	rt.addHop(obs.Hop{Kind: "owner", Sat: int(home), WallMs: wallMs(ownerStart),
		SpanID: hopID})
	if errors.Is(err, shed.ErrShed) {
		// Stage ≥ 3 hits-only: the owner ran the Get (recency touched, miss
		// metered — identical to the simulator's stage-3 path) and refused
		// the fetch behind it. Nothing is admitted and nothing is retried.
		rt.addHop(obs.Hop{Kind: "shed", Sat: int(home)})
		return sim.SourceShed, shed.Signal{Action: shed.ActionHitOnly}, nil
	}
	if err != nil {
		if !faulty {
			return sim.SourceGround, shed.Signal{}, err
		}
		// Owner unreachable: §3.4 miss-through — the burn signal.
		return sim.SourceGround, shed.Signal{Degraded: true}, nil
	}
	if hit {
		if home == first {
			return sim.SourceLocal, shed.Signal{}, nil
		}
		return sim.SourceBucket, shed.Signal{}, nil
	}
	if opts.Relay && !stage.Sheds(core.ValueRelayProbe) {
		src, served, err := relayFetch(h, cluster, client, home, r, opts.Hashing, faulty, rt)
		if err != nil {
			return sim.SourceGround, shed.Signal{}, err
		}
		if served {
			// Store a copy at the owner for future local hits. The write-back
			// admit rides under the serving relay hop's span (rt.cur), the
			// step that produced the copy. A shed answer just leaves the
			// object uncached, like a faulty admit.
			err := client.AdmitCtx(addr, r.Object, r.Size, rt.cur())
			if err != nil && !faulty && !errors.Is(err, shed.ErrShed) {
				return src, shed.Signal{}, err
			}
			return src, shed.Signal{}, nil
		}
	}
	// Ground fetch; the owner caches the object on the way through.
	action := shed.ActionNone
	if opts.Relay && stage.Sheds(core.ValueRelayProbe) {
		action = shed.ActionRelaySkip
	}
	groundStart := time.Now()
	sc, hopID = rt.nextHop()
	err = client.AdmitCtx(addr, r.Object, r.Size, sc)
	rt.addHop(obs.Hop{Kind: "ground", Sat: int(home), WallMs: wallMs(groundStart),
		SpanID: hopID})
	if err != nil && !faulty && !errors.Is(err, shed.ErrShed) {
		return sim.SourceGround, shed.Signal{}, err
	}
	return sim.SourceGround, shed.Signal{Action: action}, nil
}

// checkMeter asserts exact byte accounting after a completed replay: every
// trace request is recorded exactly once, hits and misses partition the
// bytes. Armed only in starcdn_debug builds.
func checkMeter(m cache.Meter, tr *trace.Trace) {
	if invariant.Enabled {
		invariant.Assertf(m.Requests == int64(len(tr.Requests)),
			"replayer: meter recorded %d of %d requests", m.Requests, len(tr.Requests))
		invariant.Assertf(m.BytesHit+m.BytesMissed == m.BytesTotal,
			"replayer: byte accounting leak: hit %d + missed %d != total %d",
			m.BytesHit, m.BytesMissed, m.BytesTotal)
	}
}

// Replay drives a trace through a TCP cluster using StarCDN's request flow:
// schedule a first-contact satellite, route to the bucket owner, Get over
// TCP, relay-fetch from same-bucket neighbours on a miss, and Admit on the
// way back from the ground. It implements the same decision pipeline as
// sim.StarCDN so the two can be cross-validated request for request — with
// Options.Failures, kill for kill.
func Replay(h *core.HashScheme, cluster *Cluster, users []geo.Point, tr *trace.Trace, opts Options) (cache.Meter, error) {
	var meter cache.Meter
	if err := validate(h, cluster, users, tr, opts); err != nil {
		return meter, err
	}
	c := h.Grid().Constellation()
	scheduler, err := sched.New(c, users, opts.EpochSec, opts.Seed)
	if err != nil {
		return meter, err
	}
	fs, err := newSchedule(c, cluster, opts)
	if err != nil {
		return meter, err
	}
	client := newReplayClient(opts)
	// Pooled loopback connections; a close error after a completed replay
	// cannot invalidate the measured meter.
	defer func() { _ = client.Close() }()
	ro := newReplayObs(opts.Obs, opts.Sketches)
	if opts.Recorder != nil {
		stop := opts.Recorder.StartWall()
		defer stop()
	}

	for i := range tr.Requests {
		r := &tr.Requests[i]
		if err := fs.Advance(r.TimeSec); err != nil {
			return meter, err
		}
		// Ordering contract with sim.Run: failures advance, then the shed
		// controller closes its epochs, then the request is decided — so
		// stage changes land on identical request boundaries.
		if opts.Shedder != nil {
			opts.Shedder.Tick(r.TimeSec)
		}
		home, first, serveSat := homeFor(h, scheduler, fs, r, opts.Hashing)
		stage := shed.StageNormal
		if opts.Shedder != nil {
			stage = opts.Shedder.Stage()
		}
		rt := newReqTrace(opts, int64(i), r, first)
		// The bucket key is a pure function of the object (identical to
		// sim.StarCDN.ObjectBucket), so every path — shed, degraded, served —
		// feeds the bucket top-K exactly as the sim pipeline does.
		bucket := -1
		if ro.sketching() && opts.Hashing {
			bucket = int(h.BucketOf(r.Object))
		}
		if opts.Shedder != nil && first >= 0 && !opts.Shedder.AdmitSession(r.Location, r.TimeSec) {
			// Stage ≥ 2 turned the session away before any satellite was
			// contacted, exactly where sim.Run rejects it.
			rt.addHop(obs.Hop{Kind: "shed", Sat: int(first)})
			finishReqTrace(opts.Tracer, rt, sim.SourceShed, time.Time{})
			ro.record(sim.SourceShed, r.Size)
			ro.recordPop(r, int64(i), -1, bucket, math.NaN(), rt.traceID())
			meter.Record(r.Size, false)
			opts.Shedder.Observe(shed.Signal{Action: shed.ActionRejectSession})
			continue
		}
		if !serveSat {
			src := degradedSource(first)
			// The sim's degraded paths record a ground hop (Sat=-1); mirror
			// it so the two pipelines' hop chains stay comparable.
			rt.addHop(obs.Hop{Kind: "ground", Sat: -1})
			finishReqTrace(opts.Tracer, rt, src, time.Time{})
			ro.record(src, r.Size)
			ro.recordPop(r, int64(i), -1, bucket, math.NaN(), rt.traceID())
			meter.Record(r.Size, false)
			if opts.Shedder != nil {
				// The §3.4 miss-through (not the no-coverage case) is the
				// burn signal, as in sim.Run.
				opts.Shedder.Observe(shed.Signal{Degraded: src == sim.SourceGround})
			}
			continue
		}
		if stage.Sheds(core.ValueRemoteFetch) && home != first {
			if stage.Sheds(core.ValueMissFetch) {
				// Stage 3: a remote-owner request cannot be a cache hit
				// without the ISL fetch stage 1 already shed, so hits-only
				// mode rejects it outright instead of loading the uplink.
				rt.addHop(obs.Hop{Kind: "shed", Sat: int(home)})
				finishReqTrace(opts.Tracer, rt, sim.SourceShed, time.Time{})
				ro.record(sim.SourceShed, r.Size)
				// The owner is charged with the refusal, matching the sim's
				// ServerSat for the stage-3 remote hits-only path.
				ro.recordPop(r, int64(i), home, bucket, math.NaN(), rt.traceID())
				meter.Record(r.Size, false)
				opts.Shedder.Observe(shed.Signal{Action: shed.ActionHitOnly})
				continue
			}
			// Stage ≥ 1 sheds the remote fetch: serve the §3.4-shaped ground
			// miss without routing to the owner. No satellite cache is
			// touched, exactly as in sim.StarCDN's direct-ground path.
			rt.addHop(obs.Hop{Kind: "ground", Sat: -1})
			finishReqTrace(opts.Tracer, rt, sim.SourceGround, time.Time{})
			ro.record(sim.SourceGround, r.Size)
			ro.recordPop(r, int64(i), -1, bucket, math.NaN(), rt.traceID())
			meter.Record(r.Size, false)
			opts.Shedder.Observe(shed.Signal{Action: shed.ActionDirectGround})
			continue
		}
		addr, err := cluster.Addr(home)
		if err != nil {
			return meter, err
		}
		reqStart := time.Now()
		src, sig, err := serveRequest(h, cluster, client, home, first, addr, r, opts, stage, rt)
		if err != nil {
			return meter, err
		}
		finishReqTrace(opts.Tracer, rt, src, reqStart)
		ro.record(src, r.Size)
		ro.recordPop(r, int64(i), home, bucket, wallMs(reqStart), rt.traceID())
		meter.Record(r.Size, src.Hit())
		if opts.Shedder != nil {
			opts.Shedder.Observe(sig)
		}
	}
	checkMeter(meter, tr)
	return meter, nil
}

// reqTrace bundles one sampled request's span with its distributed-trace
// identity. A nil *reqTrace (the common, unsampled case) ignores every call,
// so the serving path needs no guards. Hop span IDs are deterministic: the
// n-th allocated hop of a trace is DeriveSpanID(hi, lo, n) with n=0 the root,
// so a sequential replay of a fixed seed names its spans identically across
// runs — and identically to the sim pipeline's trace IDs for the same seed.
type reqTrace struct {
	span      *obs.Span
	hi, lo    uint64
	propagate bool
	hop       uint64 // ordinal of the last allocated hop span ID
}

// newReqTrace starts the trace record for request index i, or returns nil
// when the request is not sampled. The root span carries the derived trace
// identity whether or not wire propagation is on (the IDs are free and make
// sim/replay span files cross-referenceable).
func newReqTrace(opts Options, i int64, r *trace.Request, first orbitSat) *reqTrace {
	if !opts.Tracer.Sampled(i) {
		return nil
	}
	rt := &reqTrace{propagate: opts.Propagate}
	rt.hi, rt.lo = opts.Tracer.TraceID(i)
	rt.span = &obs.Span{Req: i, TimeSec: r.TimeSec, Loc: r.Location,
		Object: uint64(r.Object), Size: r.Size,
		TraceID: obs.SpanContext{TraceHi: rt.hi, TraceLo: rt.lo}.TraceString(),
		SpanID:  obs.SpanIDString(obs.DeriveSpanID(rt.hi, rt.lo, 0)),
		Proc:    "client",
	}
	if first >= 0 {
		rt.span.AddHop(obs.Hop{Kind: "first-contact", Sat: int(first)})
	}
	return rt
}

// nextHop allocates the next hop's deterministic span ID, returning the wire
// context to propagate (nil unless propagation is on and the request is
// sampled) and the hop's span ID string for the Hop record. Server-side
// operation spans emitted under the returned context carry the hop span as
// their Parent, which is how -assemble nests them beneath the right hop.
func (t *reqTrace) nextHop() (sc *obs.SpanContext, spanID string) {
	if t == nil {
		return nil, ""
	}
	t.hop++
	id := obs.DeriveSpanID(t.hi, t.lo, t.hop)
	if t.propagate {
		sc = &obs.SpanContext{TraceHi: t.hi, TraceLo: t.lo, Parent: id, Sampled: true}
	}
	return sc, obs.SpanIDString(id)
}

// cur returns the wire context of the most recently allocated hop span, for
// exchanges that belong to an already-open hop (the relay write-back admit).
// Nil before the first hop, when unsampled, or with propagation off.
func (t *reqTrace) cur() *obs.SpanContext {
	if t == nil || !t.propagate || t.hop == 0 {
		return nil
	}
	id := obs.DeriveSpanID(t.hi, t.lo, t.hop)
	return &obs.SpanContext{TraceHi: t.hi, TraceLo: t.lo, Parent: id, Sampled: true}
}

// traceID returns the trace identity string ("" when unsampled) — the
// sketch-exemplar link back to the assembled distributed trace.
func (t *reqTrace) traceID() string {
	if t == nil {
		return ""
	}
	return t.span.TraceID
}

// addHop appends one hop to the underlying span (nil-safe).
func (t *reqTrace) addHop(h obs.Hop) {
	if t == nil {
		return
	}
	t.span.AddHop(h)
}

// finishReqTrace stamps the outcome on a request trace and emits its root
// span. A zero start means the request never contacted a satellite (no wall
// time to measure); such degraded requests still record the ground hop the
// sim pipeline records, keeping the two hop chains comparable.
func finishReqTrace(tr *obs.Tracer, rt *reqTrace, src sim.Source, start time.Time) {
	if rt == nil {
		return
	}
	rt.span.Source = src.String()
	rt.span.Hit = src.Hit()
	if !start.IsZero() {
		rt.span.WallMs = wallMs(start)
	}
	tr.Emit(rt.span)
}

// relayFetch checks the west then east same-bucket neighbours over TCP,
// mirroring sim.StarCDN's relayed fetch (west first, then east). With fault
// tolerance, an unreachable neighbour is treated exactly like an absent one
// (§3.4): skip it and try the other direction. On success the returned
// source identifies the serving direction (relay-west/relay-east).
func relayFetch(h *core.HashScheme, cluster *Cluster, client *Client, home orbitSat,
	r *trace.Request, hashing, faulty bool, rt *reqTrace) (sim.Source, bool, error) {
	for _, d := range []topo.Direction{topo.West, topo.East} {
		src := sim.SourceRelayWest
		if d == topo.East {
			src = sim.SourceRelayEast
		}
		var nb orbitSat
		var ok bool
		if hashing {
			nb, ok = h.RelayNeighbor(home, d)
		} else {
			nb = h.Grid().Neighbor(home, d)
			ok = h.Grid().Constellation().Active(nb)
		}
		if !ok {
			continue
		}
		addr, err := cluster.Addr(nb)
		if err != nil {
			return src, false, err
		}
		relayStart := time.Now()
		// One hop span per direction probe; a probe that finds no copy leaves
		// its server-side contains span parentless among the client hops, and
		// -assemble adopts it under the trace root (a probed-but-unused path).
		sc, hopID := rt.nextHop()
		has, err := client.ContainsCtx(addr, r.Object, sc)
		if err != nil {
			// A shed answer (the neighbour refuses probes while overloaded)
			// means the same thing as an unreachable neighbour: no relay
			// copy available here, try the other direction.
			if faulty || errors.Is(err, shed.ErrShed) {
				continue
			}
			return src, false, err
		}
		if has {
			// Touch the serving neighbour (recency) as sim does.
			if _, err := client.GetCtx(addr, r.Object, r.Size, sc); err != nil {
				if faulty || errors.Is(err, shed.ErrShed) {
					continue
				}
				return src, false, err
			}
			rt.addHop(obs.Hop{Kind: src.String(), Sat: int(nb),
				WallMs: wallMs(relayStart), SpanID: hopID})
			return src, true, nil
		}
	}
	return sim.SourceGround, false, nil
}
