package replayer

import (
	"fmt"

	"starcdn/internal/cache"
	"starcdn/internal/core"
	"starcdn/internal/geo"
	"starcdn/internal/orbit"
	"starcdn/internal/sched"
	"starcdn/internal/topo"
	"starcdn/internal/trace"
)

// orbitSat shortens the satellite ID type in this file's signatures.
type orbitSat = orbit.SatID

// Options configures a distributed replay.
type Options struct {
	Hashing  bool
	Relay    bool
	EpochSec float64
	Seed     int64
}

// Replay drives a trace through a TCP cluster using StarCDN's request flow:
// schedule a first-contact satellite, route to the bucket owner, Get over
// TCP, relay-fetch from same-bucket neighbours on a miss, and Admit on the
// way back from the ground. It implements the same decision pipeline as
// sim.StarCDN so the two can be cross-validated request for request.
func Replay(h *core.HashScheme, cluster *Cluster, users []geo.Point, tr *trace.Trace, opts Options) (cache.Meter, error) {
	var meter cache.Meter
	if h == nil || cluster == nil {
		return meter, fmt.Errorf("replayer: nil hash scheme or cluster")
	}
	if len(users) != len(tr.Locations) {
		return meter, fmt.Errorf("replayer: %d users for %d locations", len(users), len(tr.Locations))
	}
	c := h.Grid().Constellation()
	scheduler, err := sched.New(c, users, opts.EpochSec, opts.Seed)
	if err != nil {
		return meter, err
	}
	client := NewClient()
	// Pooled loopback connections; a close error after a completed replay
	// cannot invalidate the measured meter.
	defer func() { _ = client.Close() }()

	addrOf := func(id orbitSat) (string, error) {
		s, err := cluster.Server(id)
		if err != nil {
			return "", err
		}
		return s.Addr(), nil
	}

	for i := range tr.Requests {
		r := &tr.Requests[i]
		first, visible := scheduler.FirstContact(r.Location, r.TimeSec)
		if !visible {
			meter.Record(r.Size, false)
			continue
		}
		home := first
		if opts.Hashing {
			if owner, ok := h.Responsible(first, h.BucketOf(r.Object)); ok {
				home = owner
			}
		}
		addr, err := addrOf(home)
		if err != nil {
			return meter, err
		}
		hit, err := client.Get(addr, r.Object, r.Size)
		if err != nil {
			return meter, err
		}
		if hit {
			meter.Record(r.Size, true)
			continue
		}
		if opts.Relay {
			served, err := relayFetch(h, cluster, client, home, r, opts.Hashing)
			if err != nil {
				return meter, err
			}
			if served {
				// Store a copy at the owner for future local hits.
				if err := client.Admit(addr, r.Object, r.Size); err != nil {
					return meter, err
				}
				meter.Record(r.Size, true)
				continue
			}
		}
		// Ground fetch; the owner caches the object.
		if err := client.Admit(addr, r.Object, r.Size); err != nil {
			return meter, err
		}
		meter.Record(r.Size, false)
	}
	return meter, nil
}

// relayFetch checks the west then east same-bucket neighbours over TCP,
// mirroring sim.StarCDN's relayed fetch (west first, then east).
func relayFetch(h *core.HashScheme, cluster *Cluster, client *Client, home orbitSat, r *trace.Request, hashing bool) (bool, error) {
	for _, d := range []topo.Direction{topo.West, topo.East} {
		var nb orbitSat
		var ok bool
		if hashing {
			nb, ok = h.RelayNeighbor(home, d)
		} else {
			nb = h.Grid().Neighbor(home, d)
			ok = h.Grid().Constellation().Active(nb)
		}
		if !ok {
			continue
		}
		s, err := cluster.Server(nb)
		if err != nil {
			return false, err
		}
		has, err := client.Contains(s.Addr(), r.Object)
		if err != nil {
			return false, err
		}
		if has {
			// Touch the serving neighbour (recency) as sim does.
			if _, err := client.Get(s.Addr(), r.Object, r.Size); err != nil {
				return false, err
			}
			return true, nil
		}
	}
	return false, nil
}
