// Fault injection for the distributed replayer: a deterministic,
// seeded wrapper around net.Conn / net.Listener that produces the failure
// modes a satellite ISL/TCP path actually exhibits — refused dials,
// connection resets, reads stalling past the deadline, and truncated frames.
// The injector mirrors sim.FailureEvent's role for the in-process simulator:
// the same seed produces the same per-connection fault stream, so chaos
// replays are reproducible and can be cross-checked against sim.Run.
package replayer

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"syscall"
	"time"
)

// Injected fault errors. They are distinct sentinel values so tests (and the
// retry loop's callers) can tell an injected fault from a real network error.
// The refusal wraps ECONNREFUSED so error classifiers (the client's
// rejected{refused} counter) treat it exactly like a real refused dial.
var (
	ErrInjectedRefuse   = fmt.Errorf("replayer: injected dial refusal: %w", syscall.ECONNREFUSED)
	ErrInjectedReset    = errors.New("replayer: injected connection reset")
	ErrInjectedTruncate = errors.New("replayer: injected truncated frame")
)

// FaultConfig sets per-operation fault probabilities, all in [0,1].
type FaultConfig struct {
	// Seed drives every fault decision. Each wrapped connection derives its
	// own rand.Rand from (Seed, connection index), so a connection's fault
	// stream is independent of what other connections do.
	Seed int64
	// RefuseRate is the probability that a dial is refused outright.
	RefuseRate float64
	// ResetRate is the probability that a read or write hits an injected
	// connection reset (the connection is closed underneath the caller).
	ResetRate float64
	// StallRate is the probability that a read stalls for StallFor before
	// touching the wire — long enough to trip the caller's read deadline.
	StallRate float64
	// TruncateRate is the probability that a write delivers only half the
	// frame and then severs the connection, corrupting the peer's stream.
	TruncateRate float64
	// StallFor is how long a stalled read sleeps (default 100ms; set it
	// above the client's IOTimeout so stalls manifest as deadline misses).
	StallFor time.Duration
}

// FaultStats counts injected faults, for test assertions and CLI reporting.
type FaultStats struct {
	Dials       int64 // dial attempts seen by the injector
	Refused     int64 // dials refused
	Wrapped     int64 // connections wrapped
	Resets      int64 // injected connection resets
	Stalls      int64 // injected read stalls
	Truncations int64 // injected truncated writes
}

// FaultInjector deterministically injects network faults into dials,
// connections, and listeners. It is safe for concurrent use.
type FaultInjector struct {
	cfg FaultConfig

	mu    sync.Mutex
	conns int64
	stats FaultStats
}

// NewFaultInjector builds an injector; a zero config injects nothing.
func NewFaultInjector(cfg FaultConfig) *FaultInjector {
	if cfg.StallFor <= 0 {
		cfg.StallFor = 100 * time.Millisecond
	}
	return &FaultInjector{cfg: cfg}
}

// Stats returns a snapshot of the injected-fault counters.
func (f *FaultInjector) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// newConnRng derives the rand stream for the next wrapped connection.
func (f *FaultInjector) newConnRng() *rand.Rand {
	f.mu.Lock()
	f.conns++
	n := f.conns
	f.stats.Wrapped++
	f.mu.Unlock()
	// splitmix-style combination keeps per-connection streams decorrelated.
	return rand.New(rand.NewSource(f.cfg.Seed ^ int64(uint64(n)*0x9E3779B97F4A7C15)))
}

// Dialer returns a replayer Dialer that refuses a seeded fraction of dials
// and wraps every successful connection in a fault-injecting conn.
func (f *FaultInjector) Dialer() Dialer {
	// The refusal stream gets its own rng so dial decisions do not perturb
	// per-connection fault streams.
	refuseRng := rand.New(rand.NewSource(f.cfg.Seed ^ 0x5DEECE66D))
	var mu sync.Mutex
	return func(addr string, timeout time.Duration) (net.Conn, error) {
		f.mu.Lock()
		f.stats.Dials++
		f.mu.Unlock()
		mu.Lock()
		refuse := f.cfg.RefuseRate > 0 && refuseRng.Float64() < f.cfg.RefuseRate
		mu.Unlock()
		if refuse {
			f.mu.Lock()
			f.stats.Refused++
			f.mu.Unlock()
			return nil, ErrInjectedRefuse
		}
		conn, err := defaultDial(addr, timeout)
		if err != nil {
			return nil, err
		}
		return f.Wrap(conn), nil
	}
}

// Wrap returns conn with fault injection layered on top.
func (f *FaultInjector) Wrap(conn net.Conn) net.Conn {
	return &faultConn{Conn: conn, inj: f, rng: f.newConnRng()}
}

// WrapListener wraps every accepted connection with fault injection,
// exercising the server-side failure paths (a satellite's own NIC glitching).
func (f *FaultInjector) WrapListener(ln net.Listener) net.Listener {
	return &faultListener{Listener: ln, inj: f}
}

func (f *FaultInjector) count(field *int64) {
	f.mu.Lock()
	*field++
	f.mu.Unlock()
}

// faultConn injects faults in front of a real connection. Each conn owns a
// seeded rng guarded by mu (connections are shared only between a client's
// per-address critical sections, but the server side may see concurrent use).
type faultConn struct {
	net.Conn
	inj *FaultInjector
	mu  sync.Mutex
	rng *rand.Rand
}

// roll draws one fault decision.
func (c *faultConn) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	c.mu.Lock()
	hit := c.rng.Float64() < p
	c.mu.Unlock()
	return hit
}

func (c *faultConn) Read(b []byte) (int, error) {
	if c.roll(c.inj.cfg.StallRate) {
		c.inj.count(&c.inj.stats.Stalls)
		// Sleep past the caller's deadline; the underlying read then fails
		// with a timeout exactly as a stalled peer would make it.
		time.Sleep(c.inj.cfg.StallFor)
	}
	if c.roll(c.inj.cfg.ResetRate) {
		c.inj.count(&c.inj.stats.Resets)
		_ = c.Conn.Close()
		return 0, ErrInjectedReset
	}
	return c.Conn.Read(b)
}

func (c *faultConn) Write(b []byte) (int, error) {
	if len(b) > 1 && c.roll(c.inj.cfg.TruncateRate) {
		c.inj.count(&c.inj.stats.Truncations)
		n, _ := c.Conn.Write(b[:len(b)/2])
		_ = c.Conn.Close()
		return n, ErrInjectedTruncate
	}
	if c.roll(c.inj.cfg.ResetRate) {
		c.inj.count(&c.inj.stats.Resets)
		_ = c.Conn.Close()
		return 0, ErrInjectedReset
	}
	return c.Conn.Write(b)
}

// faultListener wraps accepted connections with fault injection.
type faultListener struct {
	net.Listener
	inj *FaultInjector
}

func (l *faultListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.inj.Wrap(conn), nil
}
