package replayer

import (
	"sync"
	"testing"

	"starcdn/internal/cache"
	"starcdn/internal/core"
	"starcdn/internal/geo"
	"starcdn/internal/orbit"
	"starcdn/internal/sim"
	"starcdn/internal/topo"
	"starcdn/internal/trace"
	"starcdn/internal/workload"
)

func TestServerBasicOps(t *testing.T) {
	s, err := NewServer(7, cache.LRU, 1000)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.ID() != 7 {
		t.Errorf("id = %d", s.ID())
	}
	cl := NewClient()
	defer cl.Close()
	addr := s.Addr()

	if hit, err := cl.Get(addr, 1, 100); err != nil || hit {
		t.Fatalf("empty get: hit=%v err=%v", hit, err)
	}
	if err := cl.Admit(addr, 1, 100); err != nil {
		t.Fatal(err)
	}
	if hit, err := cl.Get(addr, 1, 100); err != nil || !hit {
		t.Fatalf("get after admit: hit=%v err=%v", hit, err)
	}
	if has, err := cl.Contains(addr, 1); err != nil || !has {
		t.Fatalf("contains: %v %v", has, err)
	}
	if has, err := cl.Contains(addr, 2); err != nil || has {
		t.Fatalf("contains absent: %v %v", has, err)
	}
	// Oversize admit is accepted (bypasses cache) per CDN practice.
	if err := cl.Admit(addr, 3, 10000); err != nil {
		t.Fatalf("oversize admit: %v", err)
	}
	req, hits, err := cl.Stats(addr)
	if err != nil || req != 2 || hits != 1 {
		t.Fatalf("stats: req=%d hits=%d err=%v", req, hits, err)
	}
	m := s.Meter()
	if m.Requests != 2 || m.Hits != 1 {
		t.Fatalf("server meter: %+v", m)
	}
}

func TestServerEvictsLikeLocalLRU(t *testing.T) {
	s, err := NewServer(1, cache.LRU, 250)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cl := NewClient()
	defer cl.Close()
	addr := s.Addr()
	// Three 100-byte objects in a 250-byte cache: first should evict.
	for obj := cache.ObjectID(1); obj <= 3; obj++ {
		if err := cl.Admit(addr, obj, 100); err != nil {
			t.Fatal(err)
		}
	}
	if hit, _ := cl.Get(addr, 1, 100); hit {
		t.Error("object 1 should have been evicted")
	}
	if hit, _ := cl.Get(addr, 3, 100); !hit {
		t.Error("object 3 should be cached")
	}
}

func TestConcurrentClients(t *testing.T) {
	s, err := NewServer(1, cache.LRU, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := NewClient()
			defer cl.Close()
			for i := 0; i < 200; i++ {
				obj := cache.ObjectID(w*1000 + i)
				if err := cl.Admit(s.Addr(), obj, 64); err != nil {
					errs <- err
					return
				}
				if hit, err := cl.Get(s.Addr(), obj, 64); err != nil || !hit {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	m := s.Meter()
	if m.Requests != 8*200 {
		t.Errorf("requests = %d, want 1600", m.Requests)
	}
}

func TestClusterLazyServers(t *testing.T) {
	cl, err := NewCluster(cache.LRU, 1000)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.Len() != 0 {
		t.Errorf("fresh cluster has %d servers", cl.Len())
	}
	s1, err := cl.Server(5)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := cl.Server(5)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Error("same satellite should reuse its server")
	}
	if _, err := cl.Server(9); err != nil {
		t.Fatal(err)
	}
	if cl.Len() != 2 {
		t.Errorf("servers = %d", cl.Len())
	}
	if _, err := NewCluster(cache.LRU, 0); err == nil {
		t.Error("zero capacity should fail")
	}
}

// TestReplayMatchesInProcessSim is the replayer's cross-validation: the TCP
// pipeline must reproduce the in-process simulator's hit sequence exactly
// (same scheduler seed, same caches, same decision order).
func TestReplayMatchesInProcessSim(t *testing.T) {
	c, err := orbit.New(orbit.DefaultStarlinkShell())
	if err != nil {
		t.Fatal(err)
	}
	grid := topo.NewGrid(c, topo.StarlinkTable1())
	h, err := core.NewHashScheme(grid, 4)
	if err != nil {
		t.Fatal(err)
	}
	cities := geo.PaperCities()
	users := make([]geo.Point, len(cities))
	for i, city := range cities {
		users[i] = city.Point
	}
	cls := workload.Video()
	cls.NumObjects = 2000
	cls.SizeSigma = 0.5
	cls.MaxSizeBytes = 4 << 20
	g, err := workload.NewGenerator(cls, cities, 31)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := g.Generate(8000, 1200)
	if err != nil {
		t.Fatal(err)
	}

	const capacity = 64 << 20
	const seed = 99

	// In-process run.
	pol := sim.NewStarCDN(h, sim.CacheConfig{Kind: cache.LRU, Bytes: capacity},
		sim.StarCDNOptions{Hashing: true, Relay: true})
	m1, err := sim.Run(c, users, tr, pol, sim.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}

	// Distributed run over TCP.
	cluster, err := NewCluster(cache.LRU, capacity)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	m2, err := Replay(h, cluster, users, tr, Options{Hashing: true, Relay: true, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}

	if m1.Meter.Requests != m2.Requests {
		t.Fatalf("request counts differ: %d vs %d", m1.Meter.Requests, m2.Requests)
	}
	if m1.Meter.Hits != m2.Hits {
		t.Errorf("hit counts differ: in-process %d vs TCP %d", m1.Meter.Hits, m2.Hits)
	}
	if m1.Meter.BytesHit != m2.BytesHit {
		t.Errorf("byte hits differ: %d vs %d", m1.Meter.BytesHit, m2.BytesHit)
	}
	if m2.RequestHitRate() <= 0 {
		t.Error("TCP replay produced zero hit rate")
	}
	if cluster.Len() == 0 {
		t.Error("no servers were spun up")
	}
}

func TestReplayValidation(t *testing.T) {
	cluster, _ := NewCluster(cache.LRU, 1000)
	defer cluster.Close()
	tr := &trace.Trace{Locations: []string{"a"}}
	if _, err := Replay(nil, cluster, nil, tr, Options{}); err == nil {
		t.Error("nil hash should fail")
	}
	c, _ := orbit.New(orbit.DefaultStarlinkShell())
	h, _ := core.NewHashScheme(topo.NewGrid(c, topo.StarlinkTable1()), 4)
	if _, err := Replay(h, cluster, []geo.Point{{}, {}}, tr, Options{}); err == nil {
		t.Error("user/location mismatch should fail")
	}
}

func TestBadFrameStatus(t *testing.T) {
	s, err := NewServer(1, cache.LRU, 1000)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cl := NewClient()
	defer cl.Close()
	// An unknown op yields StatusError.
	st, _, _, err := cl.roundTrip(s.Addr(), Op(200), 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st != StatusError {
		t.Errorf("status = %d, want error", st)
	}
}

func TestReplayConcurrentCloseToSequential(t *testing.T) {
	c, err := orbit.New(orbit.DefaultStarlinkShell())
	if err != nil {
		t.Fatal(err)
	}
	h, err := core.NewHashScheme(topo.NewGrid(c, topo.StarlinkTable1()), 4)
	if err != nil {
		t.Fatal(err)
	}
	cities := geo.PaperCities()
	users := make([]geo.Point, len(cities))
	for i, city := range cities {
		users[i] = city.Point
	}
	cls := workload.Video()
	cls.NumObjects = 2000
	cls.SizeSigma = 0.5
	cls.MaxSizeBytes = 4 << 20
	g, err := workload.NewGenerator(cls, cities, 13)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := g.Generate(10000, 1200)
	if err != nil {
		t.Fatal(err)
	}
	const capacity = 64 << 20
	opts := Options{Hashing: true, Relay: true, Seed: 3}

	seqCluster, err := NewCluster(cache.LRU, capacity)
	if err != nil {
		t.Fatal(err)
	}
	defer seqCluster.Close()
	seq, err := Replay(h, seqCluster, users, tr, opts)
	if err != nil {
		t.Fatal(err)
	}

	conCluster, err := NewCluster(cache.LRU, capacity)
	if err != nil {
		t.Fatal(err)
	}
	defer conCluster.Close()
	con, err := ReplayConcurrent(h, conCluster, users, tr, opts)
	if err != nil {
		t.Fatal(err)
	}

	if con.Requests != seq.Requests {
		t.Fatalf("request counts differ: %d vs %d", con.Requests, seq.Requests)
	}
	// Interleaving differs, so hit rates match only approximately.
	d := con.RequestHitRate() - seq.RequestHitRate()
	if d < -0.05 || d > 0.05 {
		t.Errorf("concurrent RHR %.3f deviates from sequential %.3f",
			con.RequestHitRate(), seq.RequestHitRate())
	}
	if con.RequestHitRate() <= 0 {
		t.Error("concurrent replay produced no hits")
	}
}

func TestReplayConcurrentValidation(t *testing.T) {
	cluster, _ := NewCluster(cache.LRU, 1000)
	defer cluster.Close()
	tr := &trace.Trace{Locations: []string{"a"}}
	if _, err := ReplayConcurrent(nil, cluster, nil, tr, Options{}); err == nil {
		t.Error("nil hash accepted")
	}
	c, _ := orbit.New(orbit.DefaultStarlinkShell())
	h, _ := core.NewHashScheme(topo.NewGrid(c, topo.StarlinkTable1()), 4)
	if _, err := ReplayConcurrent(h, cluster, []geo.Point{{}, {}}, tr, Options{}); err == nil {
		t.Error("user/location mismatch accepted")
	}
}
