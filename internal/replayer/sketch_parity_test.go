package replayer

import (
	"io"
	"reflect"
	"strings"
	"testing"

	"starcdn/internal/cache"
	"starcdn/internal/core"
	"starcdn/internal/geo"
	"starcdn/internal/obs"
	"starcdn/internal/orbit"
	"starcdn/internal/sim"
	"starcdn/internal/topo"
	"starcdn/internal/trace"
	"starcdn/internal/workload"
)

// popularityNames are the shared top-K series both pipelines build.
var popularityNames = []string{
	"starcdn_popularity_objects",
	"starcdn_popularity_sats",
	"starcdn_popularity_buckets",
}

// sketchParityEnv builds a fixture whose distinct-key counts stay below the
// top-K capacity (24 objects ≤ 32 tracked entries, and with hashing on the
// serving satellites and buckets are functions of those objects), so the
// Space-Saving summaries never evict and the parity assertions below are
// exact — entry for entry, exemplar for exemplar — rather than approximate.
func sketchParityEnv(t *testing.T, requests, ncities int, durationSec float64, seed int64) (*core.HashScheme, []geo.Point, *trace.Trace) {
	t.Helper()
	c, err := orbit.New(orbit.DefaultStarlinkShell())
	if err != nil {
		t.Fatal(err)
	}
	h, err := core.NewHashScheme(topo.NewGrid(c, topo.StarlinkTable1()), 4)
	if err != nil {
		t.Fatal(err)
	}
	cities := geo.PaperCities()[:ncities]
	users := make([]geo.Point, len(cities))
	for i, city := range cities {
		users[i] = city.Point
	}
	cls := workload.Video()
	cls.NumObjects = 24
	cls.SizeSigma = 0.5
	cls.MaxSizeBytes = 4 << 20
	g, err := workload.NewGenerator(cls, cities, seed)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := g.Generate(requests, durationSec)
	if err != nil {
		t.Fatal(err)
	}
	return h, users, tr
}

// popularitySeries extracts the top-K snapshots from a registry, keyed by
// series name.
func popularitySeries(t *testing.T, reg *obs.Registry) map[string]obs.SeriesSnapshot {
	t.Helper()
	out := make(map[string]obs.SeriesSnapshot)
	for _, s := range reg.Snapshot() {
		if strings.HasPrefix(s.Name, "starcdn_popularity_") {
			out[s.Name+s.LabelString()] = s
		}
	}
	return out
}

// comparePopularity asserts the two registries hold identical top-K
// summaries: same entries in the same order with the same counts, error
// bounds, refined estimates, and trace exemplars.
func comparePopularity(t *testing.T, got, want map[string]obs.SeriesSnapshot, gotName, wantName string) {
	t.Helper()
	for _, name := range popularityNames {
		g, okG := got[name]
		w, okW := want[name]
		if !okG || !okW {
			t.Errorf("%s missing in %s=%v / %s=%v", name, gotName, okG, wantName, okW)
			continue
		}
		if g.TopKN != w.TopKN {
			t.Errorf("%s: stream weight differs: %s=%d %s=%d", name, gotName, g.TopKN, wantName, w.TopKN)
		}
		if len(g.TopK) == 0 {
			t.Errorf("%s: empty top-K in %s", name, gotName)
		}
		if !reflect.DeepEqual(g.TopK, w.TopK) {
			t.Errorf("%s: top-K entries differ\n%s: %+v\n%s: %+v",
				name, gotName, g.TopK, wantName, w.TopK)
		}
	}
}

// TestSketchTopKParitySimVsReplay: a sim run and a sequential TCP replay of
// the same seed must build identical top-K popularity summaries — the same
// object/satellite/bucket keys with the same counts and the same trace
// exemplars. The two pipelines share key derivation (sim.PopObjectKey etc.),
// counting rules (objects always, satellites when one served, buckets as a
// pure function of the object), and the deterministic (tracer seed, request
// index) exemplar identity, so under the no-eviction regime of
// sketchParityEnv the summaries match entry for entry.
func TestSketchTopKParitySimVsReplay(t *testing.T) {
	h, users, tr := sketchParityEnv(t, 6000, 9, 900, 41)
	c := h.Grid().Constellation()
	const capacity = 64 << 20
	const seed = 71

	simReg := obs.NewRegistry()
	pol := sim.NewStarCDN(h, sim.CacheConfig{Kind: cache.LRU, Bytes: capacity},
		sim.StarCDNOptions{Hashing: true, Relay: true})
	if _, err := sim.Run(c, users, tr, pol, sim.Config{
		Seed: seed, Metrics: simReg, Sketches: true,
		Tracer: obs.NewTracer(io.Discard, 0.25, 7),
	}); err != nil {
		t.Fatal(err)
	}

	replayReg := obs.NewRegistry()
	cluster, err := NewCluster(cache.LRU, capacity)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if _, err := Replay(h, cluster, users, tr, Options{
		Hashing: true, Relay: true, Seed: seed, Obs: replayReg, Sketches: true,
		Tracer: obs.NewTracer(io.Discard, 0.25, 7),
	}); err != nil {
		t.Fatal(err)
	}

	simPop := popularitySeries(t, simReg)
	repPop := popularitySeries(t, replayReg)
	comparePopularity(t, repPop, simPop, "replay", "sim")

	// The sampled-rate tracer must have left exemplars on some hot entries
	// (trace IDs are shared across pipelines by construction; DeepEqual
	// above already proved they match).
	var exemplars int
	for _, s := range simPop {
		for _, e := range s.TopK {
			if e.Exemplar.Valid() {
				exemplars++
			}
		}
	}
	if exemplars == 0 {
		t.Error("no exemplars attached to any top-K entry")
	}
}

// TestSketchTopKParityConcurrentVsSequential: the concurrent replayer's
// per-worker shards, merged at segment barriers in location order, must
// yield exactly the sequential replay's top-K summaries. The counting
// inputs (object, home satellite, bucket) are precomputed sequentially in
// both pipelines, and the merge operators are commutative with total-order
// tie-breaks, so worker interleaving cannot leak into the summaries — even
// across chaos segment boundaries.
func TestSketchTopKParityConcurrentVsSequential(t *testing.T) {
	// Exactness needs the satellite key space under the tracked capacity
	// too: the serving owner varies with the per-epoch first contact, so a
	// short trace (two scheduler epochs) over few cities keeps distinct
	// serving satellites ≤ 32 and every summary in the no-eviction regime.
	h, users, tr := sketchParityEnv(t, 6000, 4, 30, 43)
	const capacity = 64 << 20

	// A mid-trace kill (and later revival) forces at least three segments in
	// ReplayConcurrent, exercising the shard merge/reset cycle.
	victim := h.NearestOwner(0, h.BucketOf(tr.Requests[0].Object))
	failures := []sim.FailureEvent{
		{TimeSec: 10, Sat: victim, Down: true},
		{TimeSec: 20, Sat: victim, Down: false},
	}

	run := func(concurrent bool) map[string]obs.SeriesSnapshot {
		reg := obs.NewRegistry()
		cluster, err := NewCluster(cache.LRU, capacity)
		if err != nil {
			t.Fatal(err)
		}
		defer cluster.Close()
		opts := Options{
			Hashing: true, Relay: true, Seed: 9, Obs: reg, Sketches: true,
			Fault: &FaultPolicy{}, Failures: failures,
			Tracer: obs.NewTracer(io.Discard, 0.25, 11),
		}
		if concurrent {
			_, err = ReplayConcurrent(h, cluster, users, tr, opts)
		} else {
			_, err = Replay(h, cluster, users, tr, opts)
		}
		if err != nil {
			t.Fatal(err)
		}
		return popularitySeries(t, reg)
	}

	seq := run(false)
	con := run(true)
	comparePopularity(t, con, seq, "concurrent", "sequential")
}
