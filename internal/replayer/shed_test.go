package replayer

import (
	"errors"
	"testing"
	"time"

	"starcdn/internal/cache"
	"starcdn/internal/obs"
	"starcdn/internal/shed"
	"starcdn/internal/sim"
)

// shedChaosConfig is the overload-control configuration the chaos shed
// tests share: tight epochs and a low degraded tolerance so a transient
// kill wave drives the ladder up, a small session quota with a short idle
// window so stage 2 visibly rejects, and a single dwell epoch so recovery
// completes within the trace.
func shedChaosConfig(reg *obs.Registry) shed.Config {
	cfg := shed.Defaults()
	cfg.EpochSec = 30
	cfg.WindowEpochs = 4
	cfg.MaxDegraded = 0.02
	cfg.DwellEpochs = 1
	cfg.SessionQuota = 6
	cfg.SessionIdleSec = 10
	cfg.Metrics = reg
	return cfg
}

// counterValue reads one counter series (name plus rendered labels) from a
// registry snapshot, returning 0 when the series does not exist.
func counterValue(reg *obs.Registry, key string) float64 {
	for _, s := range reg.Snapshot() {
		if s.Name+s.LabelString() == key {
			return s.Value
		}
	}
	return 0
}

// stage3Controller escalates a fresh controller to StageHitsOnly via the
// external burn signal: each Tick closes one 1-second epoch, and a burn of
// 10 clears every Enter threshold, so three closed epochs climb the ladder.
func stage3Controller(t *testing.T) *shed.Controller {
	t.Helper()
	cfg := shed.Defaults()
	cfg.EpochSec = 1
	cfg.DwellEpochs = 1
	ctrl, err := shed.NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctrl.SetBurn(10)
	for ts := 0.0; ts <= 4; ts++ {
		ctrl.Tick(ts)
	}
	if got := ctrl.Stage(); got != shed.StageHitsOnly {
		t.Fatalf("controller at %v, want stage-3", got)
	}
	return ctrl
}

// TestShedParitySimVsSequentialReplay is the overload-control cross-check in
// its strictest form: under an identical §3.4 kill schedule and an identical
// shed configuration, the in-process simulator and the sequential TCP replay
// must shed the identical request set — same meters, same per-action shed
// counters, same stage transitions, same final stage.
func TestShedParitySimVsSequentialReplay(t *testing.T) {
	const requests = 6000
	const traceSeed = 31
	const capacity = 64 << 20
	const seed = 99

	hSim, usersSim, trSim := newReplayFixture(t, requests, traceSeed)
	hTCP, usersTCP, trTCP := newReplayFixture(t, requests, traceSeed)

	opts := Options{Hashing: true, Relay: true, Seed: seed}
	sats := contactedSats(t, hTCP, usersTCP, trTCP, opts)
	// All-transient kills: every outage is a miss-through wave (the burn
	// signal) and every satellite comes back, so the run must recover.
	events := sim.GenerateChaos(sats, sim.ChaosOptions{
		StartSec: 200, EndSec: 500,
		KillFraction:      0.30,
		TransientFraction: 1.0,
		ReviveAfterSec:    200,
		Seed:              7,
	})
	if len(events) == 0 {
		t.Fatal("chaos generator produced no events")
	}

	regSim := obs.NewRegistry()
	simCtrl, err := shed.NewController(shedChaosConfig(regSim))
	if err != nil {
		t.Fatal(err)
	}
	pol := sim.NewStarCDN(hSim, sim.CacheConfig{Kind: cache.LRU, Bytes: capacity},
		sim.StarCDNOptions{Hashing: true, Relay: true})
	m1, err := sim.Run(hSim.Grid().Constellation(), usersSim, trSim, pol,
		sim.Config{Seed: seed, Failures: events, Shedder: simCtrl})
	if err != nil {
		t.Fatal(err)
	}

	regTCP := obs.NewRegistry()
	tcpCtrl, err := shed.NewController(shedChaosConfig(regTCP))
	if err != nil {
		t.Fatal(err)
	}
	// The one controller drives both sides of the wire: the replay loop's
	// client-side decisions and the servers' StatusShed enforcement.
	cluster, err := NewClusterOpts(cache.LRU, capacity, ServerOptions{Shedder: tcpCtrl})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cluster.Close() }()
	opts.Fault = chaosFaultPolicy()
	opts.Failures = events
	opts.Obs = obs.NewRegistry()
	opts.Shedder = tcpCtrl
	m2, err := Replay(hTCP, cluster, usersTCP, trTCP, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Hit-for-hit parity: shedding changed which requests hit, and it must
	// have changed them identically in both pipelines.
	if m1.Meter.Requests != m2.Requests {
		t.Fatalf("request counts differ: %d vs %d", m1.Meter.Requests, m2.Requests)
	}
	if m1.Meter.Hits != m2.Hits {
		t.Errorf("hit counts differ under shedding: sim %d vs TCP %d", m1.Meter.Hits, m2.Hits)
	}
	if m1.Meter.BytesHit != m2.BytesHit {
		t.Errorf("byte hits differ under shedding: %d vs %d", m1.Meter.BytesHit, m2.BytesHit)
	}

	// The shed request sets agree exactly.
	simShed := m1.BySource[sim.SourceShed]
	tcpShed := counterValue(opts.Obs, `starcdn_replay_requests_total{source="shed"}`)
	if simShed == 0 {
		t.Fatal("chaos run shed no requests; the schedule no longer overloads the controller")
	}
	if float64(simShed) != tcpShed {
		t.Errorf("shed counts differ: sim %d vs TCP %.0f", simShed, tcpShed)
	}

	// Same controller trajectory: every action tally, both transition
	// directions (recovery included), and the final stage agree.
	for a := shed.ActionRelaySkip; a <= shed.ActionHitOnly; a++ {
		key := `starcdn_shed_actions_total{action="` + a.String() + `"}`
		sv, tv := counterValue(regSim, key), counterValue(regTCP, key)
		if sv != tv {
			t.Errorf("action %v counts differ: sim %.0f vs TCP %.0f", a, sv, tv)
		}
	}
	sUp, sDown := simCtrl.Transitions()
	tUp, tDown := tcpCtrl.Transitions()
	if sUp != tUp || sDown != tDown {
		t.Errorf("transitions differ: sim (%d up, %d down) vs TCP (%d up, %d down)",
			sUp, sDown, tUp, tDown)
	}
	if sUp < 2 {
		t.Errorf("controller climbed only %d stages; the kill wave no longer overloads it", sUp)
	}
	if sDown == 0 {
		t.Error("controller never recovered a stage within the trace")
	}
	if s1, s2 := simCtrl.Stage(), tcpCtrl.Stage(); s1 != s2 {
		t.Errorf("final stages differ: sim %v vs TCP %v", s1, s2)
	}
	if got := tcpCtrl.Stage(); got != shed.StageNormal {
		t.Errorf("replay ended at %v, want full hysteretic recovery to stage-0", got)
	}
}

// TestShedWireStatusShedNoRetry: a StatusShed answer is a served refusal,
// not a transport fault — the client maps it to shed.ErrShed on exactly one
// attempt (retrying would add the very load being shed) and counts it under
// starcdn_client_rejected_total{reason="shed"}.
func TestShedWireStatusShedNoRetry(t *testing.T) {
	ctrl := stage3Controller(t)
	s, err := NewServerOpts(1, cache.LRU, 1<<20, ServerOptions{Shedder: ctrl})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()

	reg := obs.NewRegistry()
	cl := NewClientOpts(ClientOptions{
		IOTimeout: 2 * time.Second,
		Retry:     RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond},
		Obs:       reg,
		Shed:      true,
	})
	defer func() { _ = cl.Close() }()

	// Owner miss at stage 3: the fetch behind it is refused.
	if _, err := cl.Get(s.Addr(), 42, 100); !errors.Is(err, shed.ErrShed) {
		t.Fatalf("stage-3 miss returned %v, want shed.ErrShed", err)
	}
	if err := cl.Admit(s.Addr(), 42, 100); !errors.Is(err, shed.ErrShed) {
		t.Fatalf("stage-3 admit returned %v, want shed.ErrShed", err)
	}
	if _, err := cl.Contains(s.Addr(), 42); !errors.Is(err, shed.ErrShed) {
		t.Fatalf("stage-3 contains returned %v, want shed.ErrShed", err)
	}
	// Hello + three single-attempt operations; a retried shed would add
	// attempts and show up here.
	if got := counterValue(reg, "starcdn_client_attempts_total"); got != 3 {
		t.Errorf("attempts = %.0f, want 3 (sheds must not retry)", got)
	}
	if got := counterValue(reg, "starcdn_client_retries_total"); got != 0 {
		t.Errorf("retries = %.0f, want 0", got)
	}
	if got := counterValue(reg, `starcdn_client_rejected_total{reason="shed"}`); got != 3 {
		t.Errorf("rejected{shed} = %.0f, want 3", got)
	}
	// Sheds are served answers, not failures.
	if got := counterValue(reg, "starcdn_client_failures_total"); got != 0 {
		t.Errorf("failures = %.0f, want 0", got)
	}

	// The stage query reports the ladder position and burn over the wire.
	stage, burn, err := cl.ShedStage(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if stage != shed.StageHitsOnly {
		t.Errorf("wire stage = %v, want stage-3", stage)
	}
	if burn < 9.999 {
		t.Errorf("wire burn = %v, want ~10", burn)
	}
}

// TestShedWireOldClientFallback: a peer that never requested CapShed must
// never see the StatusShed byte — shed rejections arrive as StatusError,
// the terminal-fault path every pre-v3 client already handles.
func TestShedWireOldClientFallback(t *testing.T) {
	ctrl := stage3Controller(t)
	s, err := NewServerOpts(2, cache.LRU, 1<<20, ServerOptions{Shedder: ctrl})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()

	// Propagate-only client: sends a hello, asks for CapTrace but not
	// CapShed — the modern server must still answer its sheds StatusError.
	cl := NewClientOpts(ClientOptions{IOTimeout: 2 * time.Second, Propagate: true})
	defer func() { _ = cl.Close() }()
	st, _, _, err := cl.roundTrip(s.Addr(), OpGet, 42, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st != StatusError {
		t.Errorf("non-CapShed get answered %d, want StatusError", st)
	}
	if _, _, err := cl.ShedStage(s.Addr()); err == nil {
		t.Error("OpShed without CapShed succeeded, want error")
	}

	// A plain v1-style client (no hello at all) gets the same fallback.
	v1 := NewClient()
	defer func() { _ = v1.Close() }()
	st, _, _, err = v1.roundTrip(s.Addr(), OpAdmit, 7, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st != StatusError {
		t.Errorf("v1 admit answered %d, want StatusError", st)
	}
}

// TestShedHelloNegotiatesCapability: the hello grants CapShed only when
// requested, and a granted connection answers sheds with StatusShed.
func TestShedHelloNegotiatesCapability(t *testing.T) {
	ctrl := stage3Controller(t)
	s, err := NewServerOpts(3, cache.LRU, 1<<20, ServerOptions{Shedder: ctrl})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()

	cl := NewClientOpts(ClientOptions{IOTimeout: 2 * time.Second, Shed: true})
	defer func() { _ = cl.Close() }()
	st, _, _, err := cl.roundTrip(s.Addr(), OpGet, 42, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st != StatusShed {
		t.Errorf("CapShed get answered %d, want StatusShed", st)
	}
	// Hits are never shed, even at stage 3: a server without the object
	// sheds the miss, but one holding it serves it.
	ctrl2 := stage3Controller(t)
	s2, err := NewServerOpts(4, cache.LRU, 1<<20, ServerOptions{Shedder: ctrl2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s2.Close() }()
	// Seed the cache below stage 3 by admitting through a fresh controller…
	// impossible here; admit directly against the running server before it
	// sheds is also refused. Use the server's cache handle instead.
	s2.mu.Lock()
	if err := s2.cache.Admit(9, 10); err != nil {
		s2.mu.Unlock()
		t.Fatal(err)
	}
	s2.mu.Unlock()
	hit, err := cl.Get(s2.Addr(), 9, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("cached object not served at stage 3; hits must never shed")
	}
}
