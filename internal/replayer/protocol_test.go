package replayer

import (
	"bytes"
	"errors"
	"io"
	"log/slog"
	"net"
	"strings"
	"testing"
	"time"

	"starcdn/internal/cache"
	"starcdn/internal/obs"
)

// TestReadFrameTruncated: every truncation of a valid frame must surface an
// error — never a zero-value message, never a hang.
func TestReadFrameTruncated(t *testing.T) {
	var full bytes.Buffer
	var scratch [frameSize]byte
	if err := writeRequest(&full, &scratch, OpGet, 42, 100); err != nil {
		t.Fatal(err)
	}
	raw := full.Bytes()
	if len(raw) != frameSize {
		t.Fatalf("frame size = %d, want %d", len(raw), frameSize)
	}
	for cut := 0; cut < frameSize; cut++ {
		_, err := readFrame(bytes.NewReader(raw[:cut]))
		if err == nil {
			t.Errorf("truncated frame of %d bytes was accepted", cut)
		}
		if cut > 0 && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Errorf("cut=%d: error %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
}

// TestReadFrameConsumesExactlyOneFrame: trailing bytes must be left for the
// next read — the protocol never over-reads or over-allocates.
func TestReadFrameConsumesExactlyOneFrame(t *testing.T) {
	var buf bytes.Buffer
	var scratch [frameSize]byte
	if err := writeRequest(&buf, &scratch, OpAdmit, 7, 64); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("trailing")
	m, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m.op != OpAdmit || m.a != 7 || m.b != 64 {
		t.Errorf("decoded %+v", m)
	}
	if buf.String() != "trailing" {
		t.Errorf("frame read consumed trailing bytes: %q left", buf.String())
	}
}

// TestReadResponseCorruptStatus: a status byte outside the defined range is
// a protocol violation, not a silently-propagated status.
func TestReadResponseCorruptStatus(t *testing.T) {
	var scratch [frameSize]byte
	for _, bad := range []uint8{uint8(StatusShed) + 1, 42, 255} {
		var buf bytes.Buffer
		if err := writeFrame(&buf, bad, 1, 2); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := readResponse(&buf, &scratch); err == nil {
			t.Errorf("status byte %d was accepted", bad)
		}
	}
	// All defined statuses round-trip.
	for _, st := range []Status{StatusMiss, StatusHit, StatusOK, StatusError, StatusShed} {
		var buf bytes.Buffer
		if err := writeResponse(&buf, &scratch, st, 3, 4); err != nil {
			t.Fatal(err)
		}
		got, a, b, err := readResponse(&buf, &scratch)
		if err != nil || got != st || a != 3 || b != 4 {
			t.Errorf("status %d: got (%d,%d,%d,%v)", st, got, a, b, err)
		}
	}
}

// errWriter fails after n bytes, modelling a connection severed mid-frame.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if len(p) > w.n {
		n := w.n
		w.n = 0
		return n, errors.New("severed")
	}
	w.n -= len(p)
	return len(p), nil
}

func TestWriteFramePropagatesShortWrite(t *testing.T) {
	if err := writeFrame(&errWriter{n: 5}, uint8(OpGet), 1, 2); err == nil {
		t.Error("short write was not reported")
	}
}

// TestServerSurvivesGarbageAndTruncatedInput: malformed client bytes must
// neither hang a handler nor take the server down for other clients.
func TestServerSurvivesGarbageAndTruncatedInput(t *testing.T) {
	capture := obs.NewCapture()
	s, err := NewServerOpts(1, cache.LRU, 1000, ServerOptions{
		Log: obs.NewLogger(capture),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()

	// A truncated frame followed by close: handler must exit cleanly.
	raw, err := net.DialTimeout("tcp", s.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw.Write([]byte{byte(OpGet), 1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := raw.Close(); err != nil {
		t.Fatal(err)
	}

	// A garbage full-size frame: the server answers StatusError and keeps
	// the connection usable.
	cl := NewClientOpts(ClientOptions{IOTimeout: 2 * time.Second})
	defer func() { _ = cl.Close() }()
	st, _, _, err := cl.roundTrip(s.Addr(), Op(0xEE), 0xDEADBEEF, 1<<60, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st != StatusError {
		t.Errorf("garbage op status = %d, want StatusError", st)
	}
	// The server is still healthy for normal traffic.
	if err := cl.Admit(s.Addr(), 9, 10); err != nil {
		t.Fatal(err)
	}
	if hit, err := cl.Get(s.Addr(), 9, 10); err != nil || !hit {
		t.Fatalf("server unhealthy after garbage: hit=%v err=%v", hit, err)
	}
	for _, msg := range capture.Messages() {
		if strings.Contains(msg, "accept") {
			t.Errorf("malformed input reached the accept error log: %q", msg)
		}
	}
}

// TestServerLogInjectable: accept-loop errors flow as structured records to
// the injected slog handler instead of the global logger, carrying the
// satellite ID as an attribute rather than baked into a format string.
func TestServerLogInjectable(t *testing.T) {
	capture := obs.NewCapture()
	s, err := NewServerOpts(3, cache.LRU, 1000, ServerOptions{
		Log: obs.NewLogger(capture),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Close the raw listener without signalling shutdown: the accept loop
	// must report through the injected log and exit.
	if err := s.ln.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if recs := capture.Records(); len(recs) > 0 {
			r := recs[0]
			if r.Level != slog.LevelError || !strings.Contains(r.Message, "accept") {
				t.Errorf("unexpected accept record: %+v", r)
			}
			if got := r.Attrs["sat"].Int64(); got != 3 {
				t.Errorf("sat attr = %d, want 3", got)
			}
			if r.Attrs["err"].String() == "" {
				t.Error("accept record carries no err attribute")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("accept error never reached the injected logger")
		}
		time.Sleep(time.Millisecond)
	}
	// Close is still safe; the listener close error is expected and benign.
	_ = s.Close()
}
