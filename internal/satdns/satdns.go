// Package satdns implements the resolution service §7 calls for: "a fast,
// efficient DNS infrastructure to resolve a client to the first-contact
// satellite". Terrestrial CDN mapping hands out edge-server addresses with
// DNS TTLs of minutes; in an LSN the answer changes every scheduler epoch
// (15 s), so the resolver's TTL must expire exactly at the next epoch
// boundary. The service speaks a compact binary protocol over UDP, and the
// client caches answers for their remaining TTL.
package satdns

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"

	"starcdn/internal/orbit"
	"starcdn/internal/sched"
)

// Wire format: all fields big endian.
//
//	query:    magic(2)=0x5D45 | user(4)
//	response: magic(2)=0x5D46 | status(1) | sat(4) | ttlMs(4)
const (
	queryMagic    = 0x5D45
	responseMagic = 0x5D46
	querySize     = 6
	responseSize  = 11
)

// Response statuses.
const (
	statusOK       = 0
	statusNoSat    = 1
	statusBadQuery = 2
)

// Clock supplies simulation time in seconds; servers and clients must share
// one for TTL arithmetic.
type Clock func() float64

// WallClock returns a Clock mapping wall time since now to simulation
// seconds at the given rate.
func WallClock(rate float64) Clock {
	start := time.Now()
	return func() float64 { return time.Since(start).Seconds() * rate }
}

// Server answers first-contact queries for a fixed user population.
type Server struct {
	sched *sched.Scheduler
	clock Clock
	conn  net.PacketConn
	wg    sync.WaitGroup

	mu      sync.Mutex
	queries int64
}

// NewServer starts a resolver on a fresh loopback UDP port.
func NewServer(s *sched.Scheduler, clock Clock) (*Server, error) {
	if s == nil || clock == nil {
		return nil, fmt.Errorf("satdns: nil scheduler or clock")
	}
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("satdns: listen: %w", err)
	}
	srv := &Server{sched: s, clock: clock, conn: conn}
	srv.wg.Add(1)
	go srv.serve()
	return srv, nil
}

// Addr returns the server's UDP address.
func (s *Server) Addr() string { return s.conn.LocalAddr().String() }

// Queries returns the number of queries served.
func (s *Server) Queries() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queries
}

// Close stops the server.
func (s *Server) Close() error {
	err := s.conn.Close()
	s.wg.Wait()
	return err
}

func (s *Server) serve() {
	defer s.wg.Done()
	buf := make([]byte, 64)
	for {
		n, addr, err := s.conn.ReadFrom(buf)
		if err != nil {
			return // closed
		}
		resp := s.answer(buf[:n])
		if _, err := s.conn.WriteTo(resp, addr); err != nil {
			return
		}
	}
}

// answer resolves one query datagram.
func (s *Server) answer(q []byte) []byte {
	s.mu.Lock()
	s.queries++
	s.mu.Unlock()
	resp := make([]byte, responseSize)
	binary.BigEndian.PutUint16(resp[0:2], responseMagic)
	if len(q) != querySize || binary.BigEndian.Uint16(q[0:2]) != queryMagic {
		resp[2] = statusBadQuery
		return resp
	}
	user := int(binary.BigEndian.Uint32(q[2:6]))
	now := s.clock()
	sat, ok := s.sched.FirstContact(user, now)
	if !ok {
		resp[2] = statusNoSat
		return resp
	}
	// TTL runs to the next epoch boundary, when the assignment may change.
	epoch := s.sched.EpochSec()
	remaining := epoch - mod(now, epoch)
	resp[2] = statusOK
	binary.BigEndian.PutUint32(resp[3:7], uint32(sat))
	binary.BigEndian.PutUint32(resp[7:11], uint32(remaining*1000))
	return resp
}

func mod(a, b float64) float64 {
	m := a - float64(int64(a/b))*b
	if m < 0 {
		m += b
	}
	return m
}

// Answer is a resolution result.
type Answer struct {
	Sat      orbit.SatID
	TTLSec   float64
	Resolved bool // false when no satellite is in view
}

// Client resolves users against a Server, caching answers for their TTL.
type Client struct {
	addr    string
	clock   Clock
	conn    net.Conn
	timeout time.Duration

	mu     sync.Mutex
	cache  map[int]cachedAnswer
	hits   int64
	misses int64
}

// DefaultTimeout bounds one resolve round trip when the caller does not pick
// a timeout. UDP has no failure signal, so without a deadline an unreachable
// resolver would hang Resolve forever.
const DefaultTimeout = 2 * time.Second

type cachedAnswer struct {
	answer    Answer
	expiresAt float64
}

// NewClient dials the resolver with the default resolve timeout.
func NewClient(addr string, clock Clock) (*Client, error) {
	return NewClientTimeout(addr, clock, DefaultTimeout)
}

// NewClientTimeout dials the resolver with an explicit per-resolve deadline;
// non-positive timeouts select DefaultTimeout. Tests and fault-tolerant
// callers use short timeouts so an unreachable resolver fails fast instead
// of stalling the replay pipeline.
func NewClientTimeout(addr string, clock Clock, timeout time.Duration) (*Client, error) {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("satdns: dial: %w", err)
	}
	return &Client{addr: addr, clock: clock, conn: conn, timeout: timeout,
		cache: make(map[int]cachedAnswer)}, nil
}

// Close releases the client socket.
func (c *Client) Close() error { return c.conn.Close() }

// CacheStats returns cache hits and misses.
func (c *Client) CacheStats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Resolve returns the user's first-contact satellite, from cache when the
// previous answer's TTL has not expired.
func (c *Client) Resolve(user int) (Answer, error) {
	now := c.clock()
	c.mu.Lock()
	if ca, ok := c.cache[user]; ok && now < ca.expiresAt {
		c.hits++
		c.mu.Unlock()
		return ca.answer, nil
	}
	c.misses++
	c.mu.Unlock()

	q := make([]byte, querySize)
	binary.BigEndian.PutUint16(q[0:2], queryMagic)
	binary.BigEndian.PutUint32(q[2:6], uint32(user))
	if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
		return Answer{}, err
	}
	if _, err := c.conn.Write(q); err != nil {
		return Answer{}, fmt.Errorf("satdns: send: %w", err)
	}
	resp := make([]byte, 64)
	n, err := c.conn.Read(resp)
	if err != nil {
		return Answer{}, fmt.Errorf("satdns: recv: %w", err)
	}
	if n != responseSize || binary.BigEndian.Uint16(resp[0:2]) != responseMagic {
		return Answer{}, fmt.Errorf("satdns: malformed response (%d bytes)", n)
	}
	var ans Answer
	switch resp[2] {
	case statusOK:
		ans = Answer{
			Sat:      orbit.SatID(binary.BigEndian.Uint32(resp[3:7])),
			TTLSec:   float64(binary.BigEndian.Uint32(resp[7:11])) / 1000,
			Resolved: true,
		}
	case statusNoSat:
		ans = Answer{Resolved: false, TTLSec: 1}
	default:
		return Answer{}, fmt.Errorf("satdns: query rejected (status %d)", resp[2])
	}
	c.mu.Lock()
	c.cache[user] = cachedAnswer{answer: ans, expiresAt: now + ans.TTLSec}
	c.mu.Unlock()
	return ans, nil
}
