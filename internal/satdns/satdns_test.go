package satdns

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"starcdn/internal/geo"
	"starcdn/internal/orbit"
	"starcdn/internal/sched"
)

// simClock is a manually advanced clock for deterministic TTL tests.
type simClock struct {
	mu  sync.Mutex
	now float64
}

func (c *simClock) Now() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *simClock) Advance(d float64) {
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

func newFixture(t *testing.T) (*Server, *Client, *simClock, *sched.Scheduler) {
	t.Helper()
	c, err := orbit.New(orbit.DefaultStarlinkShell())
	if err != nil {
		t.Fatal(err)
	}
	var users []geo.Point
	for _, city := range geo.PaperCities() {
		users = append(users, city.Point)
	}
	// A polar user that never resolves in a 53-degree shell.
	users = append(users, geo.NewPoint(89.5, 0))
	s, err := sched.New(c, users, 15, 3)
	if err != nil {
		t.Fatal(err)
	}
	clock := &simClock{}
	srv, err := NewServer(s, clock.Now)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cl, err := NewClient(srv.Addr(), clock.Now)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return srv, cl, clock, s
}

func TestResolveMatchesScheduler(t *testing.T) {
	srv, cl, clock, s := newFixture(t)
	for u := 0; u < 9; u++ {
		ans, err := cl.Resolve(u)
		if err != nil {
			t.Fatal(err)
		}
		want, ok := s.FirstContact(u, clock.Now())
		if !ok {
			t.Fatalf("scheduler has no answer for user %d", u)
		}
		if !ans.Resolved || ans.Sat != want {
			t.Errorf("user %d: resolved %v/%d, want %d", u, ans.Resolved, ans.Sat, want)
		}
		if ans.TTLSec <= 0 || ans.TTLSec > 15 {
			t.Errorf("user %d: TTL %v out of epoch bounds", u, ans.TTLSec)
		}
	}
	if srv.Queries() != 9 {
		t.Errorf("server saw %d queries, want 9", srv.Queries())
	}
}

func TestNoSatelliteAnswer(t *testing.T) {
	_, cl, _, _ := newFixture(t)
	ans, err := cl.Resolve(9) // the polar user
	if err != nil {
		t.Fatal(err)
	}
	if ans.Resolved {
		t.Error("polar user should not resolve in a 53-degree shell")
	}
}

func TestTTLCaching(t *testing.T) {
	srv, cl, clock, s := newFixture(t)
	// Two resolutions inside one epoch: one query, one cache hit.
	a1, err := cl.Resolve(0)
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(5)
	a2, err := cl.Resolve(0)
	if err != nil {
		t.Fatal(err)
	}
	if a1.Sat != a2.Sat {
		t.Error("cached answer changed within the epoch")
	}
	hits, misses := cl.CacheStats()
	if hits != 1 || misses != 1 {
		t.Errorf("cache stats = %d hits / %d misses, want 1/1", hits, misses)
	}
	if srv.Queries() != 1 {
		t.Errorf("server saw %d queries, want 1 (TTL should suppress the second)", srv.Queries())
	}
	// Crossing the epoch boundary expires the cache and may change the sat.
	clock.Advance(15)
	a3, err := cl.Resolve(0)
	if err != nil {
		t.Fatal(err)
	}
	if srv.Queries() != 2 {
		t.Errorf("post-epoch resolve did not query the server")
	}
	want, _ := s.FirstContact(0, clock.Now())
	if a3.Sat != want {
		t.Errorf("post-epoch answer %d, want %d", a3.Sat, want)
	}
}

func TestBadQueryRejected(t *testing.T) {
	srv, _, clock, _ := newFixture(t)
	// Send garbage straight at the server.
	cl, err := NewClient(srv.Addr(), clock.Now)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.conn.Write([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, err := cl.conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != responseSize || buf[2] != statusBadQuery {
		t.Errorf("garbage query answer: %d bytes, status %d", n, buf[2])
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, _, clock, _ := newFixture(t)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := NewClient(srv.Addr(), clock.Now)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			for u := 0; u < 9; u++ {
				if _, err := cl.Resolve(u); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if srv.Queries() != 72 {
		t.Errorf("server saw %d queries, want 72", srv.Queries())
	}
}

func TestWallClock(t *testing.T) {
	c := WallClock(60)
	v1 := c()
	if v1 < 0 {
		t.Error("clock went backwards")
	}
}

// TestResolveTimesOutAgainstDeadResolver: a resolver that never answers (a
// bound UDP socket with no reader) must fail a Resolve within the configured
// timeout rather than hanging the caller — UDP gives no failure signal, so
// the deadline is the only thing standing between the replayer and a stall.
func TestResolveTimesOutAgainstDeadResolver(t *testing.T) {
	dead, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = dead.Close() }()
	// Drain nothing: datagrams queue in the kernel and no response ever comes.

	clock := &simClock{}
	const timeout = 150 * time.Millisecond
	cl, err := NewClientTimeout(dead.LocalAddr().String(), clock.Now, timeout)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cl.Close() }()

	start := time.Now()
	_, err = cl.Resolve(3)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("resolve against a dead resolver succeeded")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Errorf("error %v is not a net timeout", err)
	}
	if elapsed < timeout/2 {
		t.Errorf("failed after %v, before the %v deadline could fire", elapsed, timeout)
	}
	if elapsed > 10*timeout {
		t.Errorf("resolve took %v, far past the %v deadline", elapsed, timeout)
	}
	// A failed resolve is not cached: the next call queries again (and the
	// miss counter moves).
	if _, err := cl.Resolve(3); err == nil {
		t.Error("second resolve unexpectedly succeeded")
	}
	if hits, misses := cl.CacheStats(); hits != 0 || misses != 2 {
		t.Errorf("cache stats after two failed resolves: hits=%d misses=%d", hits, misses)
	}
}

// TestNewClientTimeoutDefaults: non-positive timeouts select DefaultTimeout.
func TestNewClientTimeoutDefaults(t *testing.T) {
	_, cl, _, _ := newFixture(t)
	if cl.timeout != DefaultTimeout {
		t.Errorf("NewClient timeout = %v, want %v", cl.timeout, DefaultTimeout)
	}
	cl2, err := NewClientTimeout(cl.addr, cl.clock, -1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cl2.Close() }()
	if cl2.timeout != DefaultTimeout {
		t.Errorf("negative timeout = %v, want %v", cl2.timeout, DefaultTimeout)
	}
}
