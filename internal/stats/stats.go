// Package stats provides the small statistics toolkit used by the StarCDN
// experiment harness: online summaries, empirical CDFs, histograms, and
// table-formatting helpers that render the paper's figures as text series.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary accumulates count/mean/variance/min/max online (Welford's method).
type Summary struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the arithmetic mean, or 0 with no observations.
func (s *Summary) Mean() float64 { return s.mean }

// Var returns the population variance, or 0 with fewer than two observations.
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n)
}

// Std returns the population standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation, or 0 with no observations.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation, or 0 with no observations.
func (s *Summary) Max() float64 { return s.max }

// String implements fmt.Stringer.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g max=%.4g",
		s.n, s.Mean(), s.Std(), s.min, s.max)
}

// CDF is an empirical cumulative distribution over collected samples.
type CDF struct {
	xs     []float64
	sorted bool
}

// Add appends a sample.
func (c *CDF) Add(x float64) {
	c.xs = append(c.xs, x)
	c.sorted = false
}

// AddN appends a sample n times (useful for weighted series).
func (c *CDF) AddN(x float64, n int) {
	for i := 0; i < n; i++ {
		c.Add(x)
	}
}

// N returns the sample count.
func (c *CDF) N() int { return len(c.xs) }

func (c *CDF) sortIfNeeded() {
	if !c.sorted {
		sort.Float64s(c.xs)
		c.sorted = true
	}
}

// Quantile returns the q-th quantile (q in [0,1]) using nearest-rank
// interpolation. It returns 0 with no samples.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.xs) == 0 {
		return 0
	}
	c.sortIfNeeded()
	if q <= 0 {
		return c.xs[0]
	}
	if q >= 1 {
		return c.xs[len(c.xs)-1]
	}
	pos := q * float64(len(c.xs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return c.xs[lo]
	}
	frac := pos - float64(lo)
	return c.xs[lo]*(1-frac) + c.xs[hi]*frac
}

// Median returns the 50th percentile.
func (c *CDF) Median() float64 { return c.Quantile(0.5) }

// At returns the empirical CDF value P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.xs) == 0 {
		return 0
	}
	c.sortIfNeeded()
	idx := sort.SearchFloat64s(c.xs, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(c.xs))
}

// Points returns n evenly spaced (x, P(X<=x)) points spanning the sample
// range, suitable for plotting the CDF curve.
func (c *CDF) Points(n int) [][2]float64 {
	if len(c.xs) == 0 || n <= 0 {
		return nil
	}
	c.sortIfNeeded()
	lo, hi := c.xs[0], c.xs[len(c.xs)-1]
	out := make([][2]float64, 0, n)
	if n == 1 || hi == lo {
		return append(out, [2]float64{hi, 1})
	}
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		out = append(out, [2]float64{x, c.At(x)})
	}
	return out
}

// Histogram is a fixed-bin histogram over [min, max).
type Histogram struct {
	min, max float64
	bins     []int
	under    int
	over     int
	total    int
}

// MustNewHistogram returns a histogram with nbins bins over [min, max).
// It panics if nbins <= 0 or max <= min: histogram geometry is a programmer
// decision with constant arguments, not runtime input (hence the Must
// convention rather than an error return).
func MustNewHistogram(min, max float64, nbins int) *Histogram {
	if nbins <= 0 || max <= min {
		panic("stats: invalid histogram geometry")
	}
	return &Histogram{min: min, max: max, bins: make([]int, nbins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.min:
		h.under++
	case x >= h.max:
		h.over++
	default:
		i := int((x - h.min) / (h.max - h.min) * float64(len(h.bins)))
		if i == len(h.bins) { // guard against float rounding at the edge
			i--
		}
		h.bins[i]++
	}
}

// Bin returns the count in bin i.
func (h *Histogram) Bin(i int) int { return h.bins[i] }

// NumBins returns the number of bins.
func (h *Histogram) NumBins() int { return len(h.bins) }

// Total returns the total number of observations including out-of-range ones.
func (h *Histogram) Total() int { return h.total }

// OutOfRange returns the counts below min and at-or-above max.
func (h *Histogram) OutOfRange() (under, over int) { return h.under, h.over }

// Fraction returns the fraction of all observations in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.bins[i]) / float64(h.total)
}

// Series is a labelled (x, y) series used to emit figure data as text.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Append adds one point.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Table renders one or more series sharing the same X axis as an aligned
// text table with the given x-axis label. Series with mismatched lengths are
// padded with blanks.
func Table(xLabel string, series ...Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s", xLabel)
	maxLen := 0
	for _, s := range series {
		fmt.Fprintf(&b, "%16s", s.Name)
		if len(s.X) > maxLen {
			maxLen = len(s.X)
		}
	}
	b.WriteByte('\n')
	for i := 0; i < maxLen; i++ {
		wrote := false
		for si, s := range series {
			if si == 0 {
				if i < len(s.X) {
					fmt.Fprintf(&b, "%-14.6g", s.X[i])
				} else {
					fmt.Fprintf(&b, "%-14s", "")
				}
				wrote = true
			}
			if i < len(s.Y) {
				fmt.Fprintf(&b, "%16.6g", s.Y[i])
			} else {
				fmt.Fprintf(&b, "%16s", "")
			}
		}
		if wrote {
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Ratio returns a/b, or 0 when b is 0.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Pct returns 100*a/b, or 0 when b is 0.
func Pct(a, b float64) float64 { return 100 * Ratio(a, b) }
