package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.Std() != 0 {
		t.Error("zero-value summary should report zeros")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Errorf("mean = %v, want 5", s.Mean())
	}
	if math.Abs(s.Std()-2) > 1e-12 {
		t.Errorf("std = %v, want 2", s.Std())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
	if !strings.Contains(s.String(), "n=8") {
		t.Errorf("String() = %q", s.String())
	}
}

func TestSummaryMatchesNaive(t *testing.T) {
	f := func(xs []float64) bool {
		var s Summary
		var sum float64
		clean := xs[:0]
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
				continue
			}
			clean = append(clean, x)
			s.Add(x)
			sum += x
		}
		if len(clean) == 0 {
			return s.N() == 0
		}
		naive := sum / float64(len(clean))
		return math.Abs(s.Mean()-naive) <= 1e-6*(1+math.Abs(naive))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDFQuantiles(t *testing.T) {
	var c CDF
	if c.Quantile(0.5) != 0 || c.At(1) != 0 {
		t.Error("empty CDF should report zeros")
	}
	for i := 1; i <= 100; i++ {
		c.Add(float64(i))
	}
	if got := c.Median(); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("median = %v, want 50.5", got)
	}
	if got := c.Quantile(0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := c.Quantile(1); got != 100 {
		t.Errorf("q1 = %v", got)
	}
	if got := c.At(50); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("At(50) = %v, want 0.5", got)
	}
	if got := c.At(0); got != 0 {
		t.Errorf("At(0) = %v, want 0", got)
	}
	if got := c.At(100); got != 1 {
		t.Errorf("At(100) = %v, want 1", got)
	}
}

func TestCDFQuantileMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var c CDF
	for i := 0; i < 500; i++ {
		c.Add(rng.NormFloat64())
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		v := c.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotonic at q=%v: %v < %v", q, v, prev)
		}
		prev = v
	}
}

func TestCDFAddNAndPoints(t *testing.T) {
	var c CDF
	c.AddN(1, 3)
	c.AddN(2, 1)
	if c.N() != 4 {
		t.Fatalf("N = %d", c.N())
	}
	if got := c.At(1); math.Abs(got-0.75) > 1e-9 {
		t.Errorf("At(1) = %v, want 0.75", got)
	}
	pts := c.Points(5)
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0][0] != 1 || pts[4][0] != 2 {
		t.Errorf("x range = %v..%v", pts[0][0], pts[4][0])
	}
	if pts[4][1] != 1 {
		t.Errorf("last CDF value = %v, want 1", pts[4][1])
	}
	// Degenerate single-value and n==1 cases.
	var d CDF
	d.Add(5)
	if pts := d.Points(3); len(pts) != 1 || pts[0][0] != 5 || pts[0][1] != 1 {
		t.Errorf("degenerate points = %v", pts)
	}
	if d.Points(0) != nil {
		t.Error("Points(0) should be nil")
	}
}

func TestHistogram(t *testing.T) {
	h := MustNewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.999, 10, 11} {
		h.Add(x)
	}
	if h.Total() != 7 {
		t.Errorf("total = %d", h.Total())
	}
	under, over := h.OutOfRange()
	if under != 1 || over != 2 {
		t.Errorf("under/over = %d/%d", under, over)
	}
	if h.Bin(0) != 2 { // 0 and 1.9
		t.Errorf("bin0 = %d", h.Bin(0))
	}
	if h.Bin(1) != 1 { // 2
		t.Errorf("bin1 = %d", h.Bin(1))
	}
	if h.Bin(4) != 1 { // 9.999
		t.Errorf("bin4 = %d", h.Bin(4))
	}
	if h.NumBins() != 5 {
		t.Errorf("numbins = %d", h.NumBins())
	}
	if f := h.Fraction(0); math.Abs(f-2.0/7.0) > 1e-12 {
		t.Errorf("fraction = %v", f)
	}
}

func TestHistogramPanicsOnBadGeometry(t *testing.T) {
	for _, f := range []func(){
		func() { MustNewHistogram(0, 0, 5) },
		func() { MustNewHistogram(1, 0, 5) },
		func() { MustNewHistogram(0, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestHistogramCountsSumToTotal(t *testing.T) {
	f := func(xs []float64) bool {
		h := MustNewHistogram(-5, 5, 7)
		n := 0
		for _, x := range xs {
			if math.IsNaN(x) {
				continue
			}
			h.Add(x)
			n++
		}
		sum := 0
		for i := 0; i < h.NumBins(); i++ {
			sum += h.Bin(i)
		}
		u, o := h.OutOfRange()
		return sum+u+o == n && h.Total() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSeriesAndTable(t *testing.T) {
	var a, b Series
	a.Name, b.Name = "LRU", "StarCDN"
	for i := 1; i <= 3; i++ {
		a.Append(float64(i*10), float64(50+i))
		b.Append(float64(i*10), float64(60+i))
	}
	out := Table("cache GB", a, b)
	if !strings.Contains(out, "LRU") || !strings.Contains(out, "StarCDN") {
		t.Errorf("missing headers: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Errorf("want header + 3 rows, got %d lines", len(lines))
	}
	// Mismatched lengths should not panic.
	b.Append(40, 70)
	_ = Table("x", a, b)
}

func TestRatioPct(t *testing.T) {
	if Ratio(1, 0) != 0 || Pct(1, 0) != 0 {
		t.Error("division by zero should yield 0")
	}
	if Ratio(1, 2) != 0.5 {
		t.Error("ratio wrong")
	}
	if Pct(1, 4) != 25 {
		t.Error("pct wrong")
	}
}
