// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each benchmark runs the corresponding experiment at the Small scale and
// prints the full report (series measured here next to the values the paper
// reports). Run with:
//
//	go test -bench=. -benchmem
//
// Set STARCDN_SCALE=medium for the larger overnight configuration.
package starcdn

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"starcdn/internal/experiments"
)

var (
	benchEnvOnce sync.Once
	benchEnv     *experiments.Env
)

// env returns the process-wide experiment environment so traces and
// simulation results are shared across benchmarks.
func env() *experiments.Env {
	benchEnvOnce.Do(func() {
		scale := experiments.Small()
		if os.Getenv("STARCDN_SCALE") == "medium" {
			scale = experiments.Medium()
		}
		benchEnv = experiments.NewEnv(scale)
	})
	return benchEnv
}

// runExperiment executes one registry experiment per benchmark iteration and
// prints its report once.
func runExperiment(b *testing.B, name string) {
	b.Helper()
	e := env()
	var out string
	var err error
	for i := 0; i < b.N; i++ {
		out, err = experiments.Run(e, name)
		if err != nil {
			b.Fatalf("%s: %v", name, err)
		}
	}
	b.StopTimer()
	fmt.Printf("\n%s\n", out)
}

func BenchmarkTable1Links(b *testing.B)            { runExperiment(b, "table1") }
func BenchmarkTable2Overlap(b *testing.B)          { runExperiment(b, "table2") }
func BenchmarkFig2OverlapDistance(b *testing.B)    { runExperiment(b, "fig2") }
func BenchmarkFig3GroundTracks(b *testing.B)       { runExperiment(b, "fig3") }
func BenchmarkFig5bConstellation(b *testing.B)     { runExperiment(b, "fig5b") }
func BenchmarkFig6SpreadsAndHitRates(b *testing.B) { runExperiment(b, "fig6") }
func BenchmarkFig7HitRateCurvesL4(b *testing.B)    { runExperiment(b, "fig7-l4") }
func BenchmarkFig7HitRateCurvesL9(b *testing.B)    { runExperiment(b, "fig7-l9") }
func BenchmarkFig8Uplink(b *testing.B)             { runExperiment(b, "fig8") }
func BenchmarkTable3RelaySource(b *testing.B)      { runExperiment(b, "table3") }
func BenchmarkFig9BucketTradeoff(b *testing.B)     { runExperiment(b, "fig9") }
func BenchmarkFig10LatencyCDFL4(b *testing.B)      { runExperiment(b, "fig10-l4") }
func BenchmarkFig10LatencyCDFL9(b *testing.B)      { runExperiment(b, "fig10-l9") }
func BenchmarkFig11FaultTolerance(b *testing.B)    { runExperiment(b, "fig11") }
func BenchmarkFig12Web(b *testing.B)               { runExperiment(b, "fig12-web") }
func BenchmarkFig12Download(b *testing.B)          { runExperiment(b, "fig12-download") }
func BenchmarkFig13FetchValidation(b *testing.B)   { runExperiment(b, "fig13") }

// Ablation benches for the design choices DESIGN.md calls out (§3.2 eviction
// neutrality, §3.3 relay-vs-prefetch, §3.4 transient-vs-remap).
func BenchmarkAblationEviction(b *testing.B)      { runExperiment(b, "ablation-eviction") }
func BenchmarkAblationPrefetch(b *testing.B)      { runExperiment(b, "ablation-prefetch") }
func BenchmarkAblationFailure(b *testing.B)       { runExperiment(b, "ablation-failure") }
func BenchmarkAblationGroundEdge(b *testing.B)    { runExperiment(b, "ablation-groundedge") }
func BenchmarkExtraUplinkTimeseries(b *testing.B) { runExperiment(b, "extra-uplink") }
func BenchmarkExtraSessionMigration(b *testing.B) { runExperiment(b, "extra-session") }
func BenchmarkAblationAdmission(b *testing.B)     { runExperiment(b, "ablation-admission") }
func BenchmarkExtraCongestion(b *testing.B)       { runExperiment(b, "extra-congestion") }
func BenchmarkExtraMixedClasses(b *testing.B)     { runExperiment(b, "extra-mixed") }
func BenchmarkExtraColoring(b *testing.B)         { runExperiment(b, "extra-coloring") }
