// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each benchmark runs the corresponding experiment at the Small scale and
// prints the full report (series measured here next to the values the paper
// reports). Run with:
//
//	go test -bench=. -benchmem
//
// Set STARCDN_SCALE=medium for the larger overnight configuration.
package starcdn

import (
	"fmt"
	"io"
	"os"
	"sync"
	"testing"

	"starcdn/internal/cache"
	"starcdn/internal/core"
	"starcdn/internal/experiments"
	"starcdn/internal/obs"
	"starcdn/internal/sim"
	"starcdn/internal/topo"
)

var (
	benchEnvOnce sync.Once
	benchEnv     *experiments.Env
)

// env returns the process-wide experiment environment so traces and
// simulation results are shared across benchmarks.
func env() *experiments.Env {
	benchEnvOnce.Do(func() {
		scale := experiments.Small()
		if os.Getenv("STARCDN_SCALE") == "medium" {
			scale = experiments.Medium()
		}
		benchEnv = experiments.NewEnv(scale)
	})
	return benchEnv
}

// runExperiment executes one registry experiment per benchmark iteration and
// prints its report once.
func runExperiment(b *testing.B, name string) {
	b.Helper()
	e := env()
	var out string
	var err error
	for i := 0; i < b.N; i++ {
		out, err = experiments.Run(e, name)
		if err != nil {
			b.Fatalf("%s: %v", name, err)
		}
	}
	b.StopTimer()
	fmt.Printf("\n%s\n", out)
}

func BenchmarkTable1Links(b *testing.B)            { runExperiment(b, "table1") }
func BenchmarkTable2Overlap(b *testing.B)          { runExperiment(b, "table2") }
func BenchmarkFig2OverlapDistance(b *testing.B)    { runExperiment(b, "fig2") }
func BenchmarkFig3GroundTracks(b *testing.B)       { runExperiment(b, "fig3") }
func BenchmarkFig5bConstellation(b *testing.B)     { runExperiment(b, "fig5b") }
func BenchmarkFig6SpreadsAndHitRates(b *testing.B) { runExperiment(b, "fig6") }
func BenchmarkFig7HitRateCurvesL4(b *testing.B)    { runExperiment(b, "fig7-l4") }
func BenchmarkFig7HitRateCurvesL9(b *testing.B)    { runExperiment(b, "fig7-l9") }
func BenchmarkFig8Uplink(b *testing.B)             { runExperiment(b, "fig8") }
func BenchmarkTable3RelaySource(b *testing.B)      { runExperiment(b, "table3") }
func BenchmarkFig9BucketTradeoff(b *testing.B)     { runExperiment(b, "fig9") }
func BenchmarkFig10LatencyCDFL4(b *testing.B)      { runExperiment(b, "fig10-l4") }
func BenchmarkFig10LatencyCDFL9(b *testing.B)      { runExperiment(b, "fig10-l9") }
func BenchmarkFig11FaultTolerance(b *testing.B)    { runExperiment(b, "fig11") }
func BenchmarkFig12Web(b *testing.B)               { runExperiment(b, "fig12-web") }
func BenchmarkFig12Download(b *testing.B)          { runExperiment(b, "fig12-download") }
func BenchmarkFig13FetchValidation(b *testing.B)   { runExperiment(b, "fig13") }

// Ablation benches for the design choices DESIGN.md calls out (§3.2 eviction
// neutrality, §3.3 relay-vs-prefetch, §3.4 transient-vs-remap).
func BenchmarkAblationEviction(b *testing.B)      { runExperiment(b, "ablation-eviction") }
func BenchmarkAblationPrefetch(b *testing.B)      { runExperiment(b, "ablation-prefetch") }
func BenchmarkAblationFailure(b *testing.B)       { runExperiment(b, "ablation-failure") }
func BenchmarkAblationGroundEdge(b *testing.B)    { runExperiment(b, "ablation-groundedge") }
func BenchmarkExtraUplinkTimeseries(b *testing.B) { runExperiment(b, "extra-uplink") }
func BenchmarkExtraSessionMigration(b *testing.B) { runExperiment(b, "extra-session") }
func BenchmarkAblationAdmission(b *testing.B)     { runExperiment(b, "ablation-admission") }
func BenchmarkExtraCongestion(b *testing.B)       { runExperiment(b, "extra-congestion") }
func BenchmarkExtraMixedClasses(b *testing.B)     { runExperiment(b, "extra-mixed") }
func BenchmarkExtraColoring(b *testing.B)         { runExperiment(b, "extra-coloring") }

// BenchmarkSimHotPath is the core perf baseline (recorded in
// BENCH_core.json): one seeded StarCDN sim.Run (hashing+relay, LRU) over the
// shared production trace per iteration, with all observability off. This is
// the pure decision-pipeline cost — scheduler lookup, hash ownership, cache
// ops, latency model — that every experiment above pays per request.
// SetBytes counts requests, so the reported MB/s reads as Mreq/s.
func BenchmarkSimHotPath(b *testing.B) {
	e := env()
	tr, err := e.ProductionTrace("video")
	if err != nil {
		b.Fatal(err)
	}
	c := e.Constellation("bench-hotpath")
	h, err := core.NewHashScheme(topo.NewGrid(c, topo.StarlinkTable1()), 4)
	if err != nil {
		b.Fatal(err)
	}
	users := e.Users()
	b.SetBytes(int64(len(tr.Requests)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := sim.NewStarCDN(h, sim.CacheConfig{
			Kind: cache.LRU, Bytes: e.Scale.LatencyCacheSize,
		}, sim.StarCDNOptions{Hashing: true, Relay: true})
		if _, err := sim.Run(c, users, tr, p, sim.Config{Seed: e.Scale.Seed}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObsOverhead measures what the observability layer costs the
// simulator's hot path (see BENCH_obs.json for recorded numbers). Three
// variants run the identical seeded sim.Run:
//
//	off     — nil registry, nil tracer (instrument calls no-op on nil
//	          receivers; must be indistinguishable from the pre-obs baseline)
//	metrics — live registry: per-source counters, latency histogram, and
//	          per-satellite hit-rate gauges updated on every request
//	trace   — registry plus a rate-1 tracer serialising every span to
//	          io.Discard (the worst case: JSON encode per request)
//	recorder — registry plus a flight recorder snapshotting every series on
//	          a 15s simulated epoch (the /timeseries.json + SLO data source)
//	phases+runtime — registry, recorder, the hot-path phase profiler
//	          (obs.NewSimPhases marking every stage boundary) and the
//	          runtime-metrics bridge, both flushing per recorder epoch —
//	          the full performance-observability deployment
//
// The acceptance bar is ≤5% slowdown for the metrics variant, ≤2% extra for
// the recorder on top of metrics, and ≤2% extra for phases+runtime on top of
// metrics.
func BenchmarkObsOverhead(b *testing.B) {
	e := env()
	tr, err := e.ProductionTrace("video")
	if err != nil {
		b.Fatal(err)
	}
	c := e.Constellation("bench-obs")
	h, err := core.NewHashScheme(topo.NewGrid(c, topo.StarlinkTable1()), 4)
	if err != nil {
		b.Fatal(err)
	}
	users := e.Users()

	variants := []struct {
		name string
		cfg  func() sim.Config
	}{
		{"off", func() sim.Config {
			return sim.Config{Seed: e.Scale.Seed}
		}},
		{"metrics", func() sim.Config {
			return sim.Config{Seed: e.Scale.Seed, Metrics: obs.NewRegistry()}
		}},
		{"metrics+trace", func() sim.Config {
			return sim.Config{
				Seed:    e.Scale.Seed,
				Metrics: obs.NewRegistry(),
				Tracer:  obs.NewTracer(io.Discard, 1, 1),
			}
		}},
		{"metrics+recorder", func() sim.Config {
			// Flight recorder at a 15s simulated epoch: the sim clock drives
			// TickAt per request, snapshotting every registry series into the
			// ring. The byte-identical assertion below doubles as the proof
			// that recording cannot change results.
			reg := obs.NewRegistry()
			return sim.Config{
				Seed:    e.Scale.Seed,
				Metrics: reg,
				Recorder: obs.NewRecorder(reg, obs.RecorderOptions{
					EpochSec: 15, Capacity: 1024,
				}),
			}
		}},
		{"metrics+phases+runtime", func() sim.Config {
			// The full performance-observability stack: phase profiler marking
			// every stage boundary on every request, runtime bridge sampling
			// runtime/metrics, both flushed inside each recorder epoch. The
			// byte-identical assertion below is the proof the timers cannot
			// change results.
			reg := obs.NewRegistry()
			rec := obs.NewRecorder(reg, obs.RecorderOptions{
				EpochSec: 15, Capacity: 1024,
			})
			ph := obs.NewSimPhases(reg)
			ph.BindRecorder(rec)
			rt := obs.NewRuntimeBridge(reg)
			rt.BindRecorder(rec)
			return sim.Config{
				Seed:     e.Scale.Seed,
				Metrics:  reg,
				Recorder: rec,
				Phases:   ph,
			}
		}},
	}
	var baseline *sim.Metrics
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var m *sim.Metrics
			b.SetBytes(int64(len(tr.Requests)))
			for i := 0; i < b.N; i++ {
				// Fresh policy per iteration: cache state must not carry over.
				p := sim.NewStarCDN(h, sim.CacheConfig{
					Kind: cache.LRU, Bytes: e.Scale.LatencyCacheSize,
				}, sim.StarCDNOptions{Hashing: true, Relay: true})
				var err error
				m, err = sim.Run(c, users, tr, p, v.cfg())
				if err != nil {
					b.Fatal(err)
				}
			}
			// Instrumentation must not change a single result.
			if baseline == nil {
				baseline = m
			} else if m.Meter != baseline.Meter || m.UplinkBytes != baseline.UplinkBytes ||
				m.ISLBytes != baseline.ISLBytes {
				b.Fatalf("variant %s changed results: meter %+v uplink %d isl %d, baseline meter %+v uplink %d isl %d",
					v.name, m.Meter, m.UplinkBytes, m.ISLBytes,
					baseline.Meter, baseline.UplinkBytes, baseline.ISLBytes)
			}
		})
	}
}

// BenchmarkSketchOverhead measures what the streaming-sketch telemetry adds
// on top of a metrics-equipped sim.Run (recorded in BENCH_obs.json). Two
// variants run the identical seeded simulation:
//
//	metrics          — live registry, no sketches (the BenchmarkObsOverhead
//	                   "metrics" configuration; the comparison baseline)
//	metrics+sketches — Config.Sketches on: three top-K popularity summaries
//	                   (objects, satellites, buckets — Space-Saving plus a
//	                   Count-Min refinement grid each) and overall plus
//	                   per-satellite latency quantile sketches updated on
//	                   every request
//
// The acceptance bar is ≤5% slowdown for sketches over metrics-only. Results
// must stay identical — the assertion below is the bench-side half of the
// byte-identical-reports contract (experiments.TestObsDoesNotChangeReports
// is the report-side half).
func BenchmarkSketchOverhead(b *testing.B) {
	e := env()
	tr, err := e.ProductionTrace("video")
	if err != nil {
		b.Fatal(err)
	}
	c := e.Constellation("bench-sketch")
	h, err := core.NewHashScheme(topo.NewGrid(c, topo.StarlinkTable1()), 4)
	if err != nil {
		b.Fatal(err)
	}
	users := e.Users()

	variants := []struct {
		name     string
		sketches bool
	}{
		{"metrics", false},
		{"metrics+sketches", true},
	}
	var baseline *sim.Metrics
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var m *sim.Metrics
			b.SetBytes(int64(len(tr.Requests)))
			for i := 0; i < b.N; i++ {
				// Fresh policy per iteration: cache state must not carry over.
				p := sim.NewStarCDN(h, sim.CacheConfig{
					Kind: cache.LRU, Bytes: e.Scale.LatencyCacheSize,
				}, sim.StarCDNOptions{Hashing: true, Relay: true})
				var err error
				m, err = sim.Run(c, users, tr, p, sim.Config{
					Seed: e.Scale.Seed, Metrics: obs.NewRegistry(), Sketches: v.sketches,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			// Sketches must not change a single result.
			if baseline == nil {
				baseline = m
			} else if m.Meter != baseline.Meter || m.UplinkBytes != baseline.UplinkBytes ||
				m.ISLBytes != baseline.ISLBytes {
				b.Fatalf("variant %s changed results: meter %+v uplink %d isl %d, baseline meter %+v uplink %d isl %d",
					v.name, m.Meter, m.UplinkBytes, m.ISLBytes,
					baseline.Meter, baseline.UplinkBytes, baseline.ISLBytes)
			}
		})
	}
}
