// Faulttolerance reproduces §3.4/§5.4: with 126 out-of-slot satellites, the
// consistent hashing scheme remaps dead satellites' buckets to their nearest
// active neighbours, so the system keeps serving — at a modest hit-rate cost
// for the satellites that inherit extra buckets (Fig. 11).
package main

import (
	"fmt"
	"log"
	"sort"

	"starcdn"
)

func main() {
	// Healthy and degraded systems share one workload.
	healthy, err := starcdn.NewSystem(starcdn.SystemOptions{Buckets: 9})
	if err != nil {
		log.Fatal(err)
	}
	degraded, err := starcdn.NewSystem(starcdn.SystemOptions{Buckets: 9, Outage: 126, OutageSeed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("healthy: %d active satellites; degraded: %d active\n",
		healthy.Constellation.NumActive(), degraded.Constellation.NumActive())

	class := starcdn.VideoClass()
	class.NumObjects = 8_000
	class.MaxSizeBytes = 64 << 20
	tr, err := starcdn.GenerateWorkload(class, healthy.Cities, 7, 100_000, 3*3600)
	if err != nil {
		log.Fatal(err)
	}

	cfg := starcdn.CacheConfig{Kind: starcdn.LRU, Bytes: 256 << 20}
	for _, sys := range []*starcdn.System{healthy, degraded} {
		m, err := sys.Simulate(tr, sys.StarCDN(cfg),
			starcdn.SimConfig{Seed: 1, CollectPerSat: true})
		if err != nil {
			log.Fatal(err)
		}
		label := "healthy"
		if sys == degraded {
			label = "126 dead"
		}
		fmt.Printf("%-9s RHR=%.1f%% BHR=%.1f%% uplink=%.1f%%\n", label,
			100*m.Meter.RequestHitRate(), 100*m.Meter.ByteHitRate(), 100*m.UplinkFraction())

		if sys == degraded {
			// Group serving satellites by how many buckets they inherited.
			duties := sys.Hash.Duties()
			type group struct {
				meter starcdn.Meter
				sats  int
			}
			groups := map[int]*group{}
			for id, meter := range m.PerSat {
				n := len(duties[id])
				if n > 4 {
					n = 4
				}
				g := groups[n]
				if g == nil {
					g = &group{}
					groups[n] = g
				}
				g.meter.Merge(*meter)
				g.sats++
			}
			keys := make([]int, 0, len(groups))
			for k := range groups {
				keys = append(keys, k)
			}
			sort.Ints(keys)
			fmt.Println("  buckets-served  sats     RHR     BHR")
			for _, k := range keys {
				g := groups[k]
				fmt.Printf("  %-15d %5d %6.1f%% %6.1f%%\n", k, g.sats,
					100*g.meter.RequestHitRate(), 100*g.meter.ByteHitRate())
			}
		}
	}
}
