// Quickstart: build a constellation, synthesise a workload, and compare
// StarCDN against a naive per-satellite LRU in ~30 lines.
package main

import (
	"fmt"
	"log"

	"starcdn"
)

func main() {
	sys, err := starcdn.NewSystem(starcdn.SystemOptions{Buckets: 4})
	if err != nil {
		log.Fatal(err)
	}

	// A production-like video trace over the paper's nine cities.
	class := starcdn.VideoClass()
	class.NumObjects = 10_000
	tr, err := starcdn.GenerateWorkload(class, sys.Cities, 42, 100_000, 2*3600)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d requests, %.1f GB over %d cities\n",
		tr.Len(), float64(tr.TotalBytes())/(1<<30), len(tr.Locations))

	cacheCfg := starcdn.CacheConfig{Kind: starcdn.LRU, Bytes: 256 << 20}
	for _, p := range []starcdn.Policy{sys.NaiveLRU(cacheCfg), sys.StarCDN(cacheCfg)} {
		m, err := sys.Simulate(tr, p, starcdn.SimConfig{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s request hit rate %.1f%%  byte hit rate %.1f%%  uplink %.1f%% of no-cache\n",
			p.Name(), 100*m.Meter.RequestHitRate(), 100*m.Meter.ByteHitRate(),
			100*m.UplinkFraction())
	}
}
