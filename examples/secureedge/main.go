// Secureedge demonstrates the §7 deployment prerequisites working together:
// the satdns resolver maps a user to its first-contact satellite with an
// epoch-bounded TTL, and the KMI verifies that content served from space was
// signed by a satellite holding a valid, unrevoked certificate for its hash
// bucket — including what happens when a satellite fails and is revoked.
package main

import (
	"crypto/rand"
	"fmt"
	"log"

	"starcdn"
	"starcdn/internal/kmi"
	"starcdn/internal/satdns"
	"starcdn/internal/sched"
)

func main() {
	sys, err := starcdn.NewSystem(starcdn.SystemOptions{Buckets: 4})
	if err != nil {
		log.Fatal(err)
	}

	// 1. Provision certificates for the whole active fleet.
	authority, err := kmi.NewAuthority(rand.Reader)
	if err != nil {
		log.Fatal(err)
	}
	fleet := kmi.NewFleet(authority)
	if err := fleet.Provision(rand.Reader, sys.Hash, 0, 86400); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("provisioned %d satellite certificates under one ground authority\n", fleet.Size())

	// 2. Run the first-contact resolver over UDP.
	scheduler, err := sched.New(sys.Constellation, sys.UserPoints(), 0, 1)
	if err != nil {
		log.Fatal(err)
	}
	clock := satdns.WallClock(60) // 1 wall second = 1 simulated minute
	server, err := satdns.NewServer(scheduler, clock)
	if err != nil {
		log.Fatal(err)
	}
	defer server.Close()
	resolver, err := satdns.NewClient(server.Addr(), clock)
	if err != nil {
		log.Fatal(err)
	}
	defer resolver.Close()

	// 3. A New York user resolves, fetches, and verifies signed content.
	const nyUser = 4
	ans, err := resolver.Resolve(nyUser)
	if err != nil {
		log.Fatal(err)
	}
	if !ans.Resolved {
		log.Fatal("no satellite in view over New York")
	}
	fmt.Printf("resolved New York -> satellite %d (TTL %.1fs)\n", ans.Sat, ans.TTLSec)

	// The bucket owner for the requested object serves and signs it.
	obj := starcdn.ObjectID(12345)
	owner, _ := sys.Hash.Responsible(ans.Sat, sys.Hash.BucketOf(obj))
	signer, ok := fleet.Signer(owner)
	if !ok {
		log.Fatalf("bucket owner %d has no certificate", owner)
	}
	body := []byte("video segment bytes ...")
	sig := signer.SignResponse(obj, body)

	if err := authority.Verify(signer.Cert, clock()); err != nil {
		log.Fatalf("certificate rejected: %v", err)
	}
	if err := kmi.VerifyResponse(signer.Cert, obj, body, sig); err != nil {
		log.Fatalf("response rejected: %v", err)
	}
	fmt.Printf("content served by satellite %d (bucket %d) verified end to end\n",
		owner, signer.Cert.Bucket)

	// 4. The satellite fails: the operator revokes it, verification now
	// fails, and the consistent hashing remap picks a live replacement.
	fleet.RevokeSatellite(owner)
	sys.Constellation.SetActive(owner, false)
	if err := authority.Verify(signer.Cert, clock()); err == nil {
		log.Fatal("revoked certificate still verifies")
	} else {
		fmt.Printf("after failure: certificate of satellite %d rejected (%v)\n", owner, err)
	}
	heir, ok := sys.Hash.Responsible(ans.Sat, sys.Hash.BucketOf(obj))
	if !ok {
		log.Fatal("no remap target")
	}
	heirSigner, ok := fleet.Signer(heir)
	if !ok {
		log.Fatalf("remap target %d has no certificate", heir)
	}
	sig2 := heirSigner.SignResponse(obj, body)
	if err := kmi.VerifyResponse(heirSigner.Cert, obj, body, sig2); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bucket remapped to satellite %d; its signed responses verify\n", heir)
}
