// Httpgateway exposes the simulated StarCDN as a real HTTP content service:
// an HTTP front-end plays the role of the user terminal's network gateway,
// resolves the first-contact satellite for the client's city, runs the
// StarCDN request flow (hashing, relayed fetch, ground fallback), and
// reports the outcome and simulated latency in response headers. It then
// fires a small self-test workload against itself.
//
//	GET /content/{objectID}?city=New%20York
//
// Response headers:
//
//	X-Starcdn-Source:  local | bucket | relay-west | relay-east | ground
//	X-Starcdn-Sat:     serving satellite slot
//	X-Starcdn-Latency: simulated end-to-end latency in ms
package main

import (
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"starcdn"
	"starcdn/internal/sched"
	"starcdn/internal/sim"
	"starcdn/internal/trace"
)

// gateway glues HTTP to the simulator.
type gateway struct {
	mu        sync.Mutex
	sys       *starcdn.System
	policy    starcdn.Policy
	scheduler *sched.Scheduler
	rng       *rand.Rand
	latency   sim.LatencyModel
	cityIdx   map[string]int
	start     time.Time
	sizes     map[starcdn.ObjectID]int64
}

func newGateway() (*gateway, error) {
	sys, err := starcdn.NewSystem(starcdn.SystemOptions{Buckets: 4})
	if err != nil {
		return nil, err
	}
	scheduler, err := sched.New(sys.Constellation, sys.UserPoints(), 0, 1)
	if err != nil {
		return nil, err
	}
	g := &gateway{
		sys:       sys,
		policy:    sys.StarCDN(starcdn.CacheConfig{Kind: starcdn.LRU, Bytes: 256 << 20}),
		scheduler: scheduler,
		rng:       rand.New(rand.NewSource(2)),
		latency:   sim.DefaultLatencyModel(),
		cityIdx:   map[string]int{},
		start:     time.Now(),
		sizes:     map[starcdn.ObjectID]int64{},
	}
	for i, c := range sys.Cities {
		g.cityIdx[strings.ToLower(c.Name)] = i
	}
	return g, nil
}

func (g *gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	idStr := strings.TrimPrefix(r.URL.Path, "/content/")
	objID, err := strconv.ParseUint(idStr, 10, 64)
	if err != nil {
		http.Error(w, "bad object id", http.StatusBadRequest)
		return
	}
	city := strings.ToLower(r.URL.Query().Get("city"))
	loc, ok := g.cityIdx[city]
	if !ok {
		http.Error(w, "unknown city", http.StatusNotFound)
		return
	}

	g.mu.Lock()
	// Simulated time advances with wall time so the constellation moves.
	now := time.Since(g.start).Seconds() * 60 // 1 wall second = 1 sim minute
	size, ok := g.sizes[starcdn.ObjectID(objID)]
	if !ok {
		size = int64(4<<10 + g.rng.Intn(60<<10))
		g.sizes[starcdn.ObjectID(objID)] = size
	}
	first, visible := g.scheduler.FirstContact(loc, now)
	if !visible {
		first = -1
	}
	req := trace.Request{TimeSec: now, Object: starcdn.ObjectID(objID), Size: size, Location: loc}
	ctx := sim.ServeContext{First: first, Req: &req, Rng: g.rng, Latency: g.latency}
	out := g.policy.Serve(&ctx)
	totalMs := out.SpaceMs + g.latency.UserLinkRTTMs(2, g.rng)
	g.mu.Unlock()

	w.Header().Set("X-Starcdn-Source", out.Source.String())
	w.Header().Set("X-Starcdn-Sat", strconv.Itoa(int(out.ServerSat)))
	w.Header().Set("X-Starcdn-Latency", fmt.Sprintf("%.1f", totalMs))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
	// Deterministic filler body standing in for the object bytes.
	const chunk = "starcdn-content-block-"
	var written int64
	for written < size {
		n := int64(len(chunk))
		if size-written < n {
			n = size - written
		}
		if _, err := io.WriteString(w, chunk[:n]); err != nil {
			return
		}
		written += n
	}
}

func main() {
	g, err := newGateway()
	if err != nil {
		log.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.Handle("/content/", g)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("StarCDN HTTP gateway listening on %s\n", base)

	// Self-test: a Zipf workload of clients in two cities.
	client := &http.Client{Timeout: 5 * time.Second}
	rng := rand.New(rand.NewSource(9))
	zipf := rand.NewZipf(rng, 1.2, 1, 499)
	counts := map[string]int{}
	for i := 0; i < 400; i++ {
		city := "New York"
		if i%3 == 0 {
			city = "London"
		}
		url := fmt.Sprintf("%s/content/%d?city=%s", base, zipf.Uint64()+1,
			strings.ReplaceAll(city, " ", "%20"))
		resp, err := client.Get(url)
		if err != nil {
			log.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		counts[resp.Header.Get("X-Starcdn-Source")]++
	}
	fmt.Println("requests by source after 400 fetches:")
	for src, n := range counts {
		fmt.Printf("  %-12s %d\n", src, n)
	}
	srv.Close()
}
