// Tcpreplay runs the distributed cache replayer: every satellite cache lives
// behind its own loopback TCP endpoint and ISL fetches are real network
// round trips, as in the paper's multi-process replayer (§5.1). The result
// is cross-checked against the in-process simulator.
package main

import (
	"fmt"
	"log"
	"time"

	"starcdn"
)

func main() {
	sys, err := starcdn.NewSystem(starcdn.SystemOptions{Buckets: 4})
	if err != nil {
		log.Fatal(err)
	}
	class := starcdn.VideoClass()
	class.NumObjects = 4_000
	class.MaxSizeBytes = 32 << 20
	tr, err := starcdn.GenerateWorkload(class, sys.Cities, 11, 30_000, 1800)
	if err != nil {
		log.Fatal(err)
	}
	cfg := starcdn.CacheConfig{Kind: starcdn.LRU, Bytes: 128 << 20}
	opts := starcdn.StarCDNOptions{Hashing: true, Relay: true}

	start := time.Now()
	meter, err := sys.ReplayTCP(tr, cfg, opts, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TCP replay:   %d requests in %s, RHR=%.2f%% BHR=%.2f%%\n",
		meter.Requests, time.Since(start).Round(time.Millisecond),
		100*meter.RequestHitRate(), 100*meter.ByteHitRate())

	// Cross-check against the in-process simulator.
	m, err := sys.Simulate(tr, sys.StarCDNVariant(cfg, opts), starcdn.SimConfig{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("in-process:   %d requests, RHR=%.2f%% BHR=%.2f%%\n",
		m.Meter.Requests, 100*m.Meter.RequestHitRate(), 100*m.Meter.ByteHitRate())
	if m.Meter.Hits == meter.Hits {
		fmt.Println("hit sequences match exactly across the TCP and in-process pipelines")
	} else {
		fmt.Printf("WARNING: hit counts differ (%d vs %d)\n", m.Meter.Hits, meter.Hits)
	}

	// Chaos cross-check: the same seeded §3.4 failure schedule — satellites
	// killed mid-trace, some transiently revived — through both pipelines.
	// Each run gets a fresh System because applying a schedule mutates the
	// constellation's availability.
	sysSim, err := starcdn.NewSystem(starcdn.SystemOptions{Buckets: 4})
	if err != nil {
		log.Fatal(err)
	}
	sysTCP, err := starcdn.NewSystem(starcdn.SystemOptions{Buckets: 4})
	if err != nil {
		log.Fatal(err)
	}
	candidates := make([]starcdn.SatID, sysSim.Constellation.NumSlots())
	for i := range candidates {
		candidates[i] = starcdn.SatID(i)
	}
	events := starcdn.GenerateChaos(candidates, starcdn.ChaosOptions{
		StartSec: 200, EndSec: 1600,
		KillFraction:      0.03,
		TransientFraction: 0.5,
		ReviveAfterSec:    300,
		Seed:              7,
	})
	fmt.Printf("\nchaos schedule: %d failure events (seeded, byte-identical per seed)\n", len(events))

	mc, err := sysSim.Simulate(tr, sysSim.StarCDNVariant(cfg, opts),
		starcdn.SimConfig{Seed: 1, Failures: events})
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	meterChaos, err := sysTCP.ReplayTCPOpts(tr, cfg, starcdn.ReplayOptions{
		Hashing:  true,
		Relay:    true,
		Seed:     1,
		Fault:    &starcdn.FaultPolicy{}, // default deadlines + retries
		Failures: events,
	}, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chaos TCP:    %d requests in %s, RHR=%.2f%% (servers killed mid-replay)\n",
		meterChaos.Requests, time.Since(start).Round(time.Millisecond),
		100*meterChaos.RequestHitRate())
	fmt.Printf("chaos sim:    RHR=%.2f%%\n", 100*mc.Meter.RequestHitRate())
	if mc.Meter.Hits == meterChaos.Hits {
		fmt.Println("hit sequences match exactly under the failure schedule too")
	} else {
		fmt.Printf("WARNING: chaos hit counts differ (%d vs %d)\n", mc.Meter.Hits, meterChaos.Hits)
	}
}
