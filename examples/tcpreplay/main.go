// Tcpreplay runs the distributed cache replayer: every satellite cache lives
// behind its own loopback TCP endpoint and ISL fetches are real network
// round trips, as in the paper's multi-process replayer (§5.1). The result
// is cross-checked against the in-process simulator.
package main

import (
	"fmt"
	"log"
	"time"

	"starcdn"
)

func main() {
	sys, err := starcdn.NewSystem(starcdn.SystemOptions{Buckets: 4})
	if err != nil {
		log.Fatal(err)
	}
	class := starcdn.VideoClass()
	class.NumObjects = 4_000
	class.MaxSizeBytes = 32 << 20
	tr, err := starcdn.GenerateWorkload(class, sys.Cities, 11, 30_000, 1800)
	if err != nil {
		log.Fatal(err)
	}
	cfg := starcdn.CacheConfig{Kind: starcdn.LRU, Bytes: 128 << 20}
	opts := starcdn.StarCDNOptions{Hashing: true, Relay: true}

	start := time.Now()
	meter, err := sys.ReplayTCP(tr, cfg, opts, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TCP replay:   %d requests in %s, RHR=%.2f%% BHR=%.2f%%\n",
		meter.Requests, time.Since(start).Round(time.Millisecond),
		100*meter.RequestHitRate(), 100*meter.ByteHitRate())

	// Cross-check against the in-process simulator.
	m, err := sys.Simulate(tr, sys.StarCDNVariant(cfg, opts), starcdn.SimConfig{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("in-process:   %d requests, RHR=%.2f%% BHR=%.2f%%\n",
		m.Meter.Requests, 100*m.Meter.RequestHitRate(), 100*m.Meter.ByteHitRate())
	if m.Meter.Hits == meter.Hits {
		fmt.Println("hit sequences match exactly across the TCP and in-process pipelines")
	} else {
		fmt.Printf("WARNING: hit counts differ (%d vs %d)\n", m.Meter.Hits, meter.Hits)
	}
}
