// Directtocell explores the paper's §7 "New Applications" challenge: keeping
// per-user session state (radio bearer context, TLS sessions, player
// buffers) reachable for direct-to-cell users while the satellites holding
// it sweep overhead at 7 km/s. It compares the three anchoring strategies
// over two hours of orbital motion.
package main

import (
	"fmt"
	"log"

	"starcdn"
)

func main() {
	sys, err := starcdn.NewSystem(starcdn.SystemOptions{Buckets: 9})
	if err != nil {
		log.Fatal(err)
	}
	const (
		stateBytes = 2 << 20 // 2 MB of session state per user
		duration   = 2 * 3600.0
	)
	fmt.Printf("9 cities, %d satellites, %.0f h of orbital motion, %d MB state/user\n\n",
		sys.Constellation.NumActive(), duration/3600, stateBytes>>20)
	fmt.Printf("%-18s %11s %11s %14s %14s %13s\n",
		"strategy", "handovers", "migrations", "ISL MB-hops", "reattach p50", "mig/user/hr")
	for _, strat := range []starcdn.SessionStrategy{
		starcdn.SessionFollowSatellite,
		starcdn.SessionGroundAnchor,
		starcdn.SessionBucketAnchor,
	} {
		st, err := sys.SimulateSessions(strat, stateBytes, duration, 7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %11d %11d %14.1f %12.1fms %13.1f\n",
			strat, st.Handovers, st.Migrations,
			float64(st.MigrationByteHops)/(1<<20),
			st.ReattachMs.Median(), st.MigrationsPerUserHour())
	}
	fmt.Println("\nbucket anchoring reuses StarCDN's consistent hashing as a rendezvous")
	fmt.Println("point: state stays put while a reachable bucket owner is in range.")
}
