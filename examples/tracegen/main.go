// Tracegen demonstrates the SpaceGEN pipeline (§4): fit footprint-descriptor
// models from a limited "production" trace, generate a 4x longer synthetic
// trace, and validate that the synthetic trace preserves the statistics that
// matter for satellite-cache simulation (Fig. 6).
package main

import (
	"fmt"
	"log"

	"starcdn"
)

func main() {
	sys, err := starcdn.NewSystem(starcdn.SystemOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// 1. A limited production trace (the paper had one day of Akamai logs).
	class := starcdn.VideoClass()
	class.NumObjects = 8_000
	class.MaxSizeBytes = 64 << 20
	prod, err := starcdn.GenerateWorkload(class, sys.Cities, 42, 50_000, 2*3600)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("production: %d requests over %.1f h\n", prod.Len(), prod.DurationSec()/3600)

	// 2. Fit the GPD + per-location pFDs.
	models, err := starcdn.FitModels(prod)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fitted models: %d GPD tuples, %d locations\n",
		len(models.GPD.Tuples), len(models.PFDs))
	for _, pfd := range models.PFDs[:3] {
		fmt.Printf("  pFD %-14s rate=%.1f req/s, max stack distance=%.1f MB\n",
			pfd.Location, pfd.ReqRate, float64(pfd.MaxStackDist)/(1<<20))
	}

	// 3. Generate a 4x longer synthetic trace (the paper extends 1 day to 5).
	syn, err := starcdn.GenerateSynthetic(models, 7, 200_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthetic: %d requests over %.1f h\n", syn.Len(), syn.DurationSec()/3600)

	// 4. Validate: satellite LRU hit rates match between the traces.
	fmt.Println("\nsatellite LRU validation (Fig. 6e):")
	fmt.Printf("%-10s %12s %12s\n", "cache", "RHR(prod)", "RHR(syn)")
	for _, size := range []int64{64 << 20, 256 << 20} {
		cfg := starcdn.CacheConfig{Kind: starcdn.LRU, Bytes: size}
		pm, err := sys.Simulate(prod, sys.NaiveLRU(cfg), starcdn.SimConfig{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		sm, err := sys.Simulate(syn, sys.NaiveLRU(cfg), starcdn.SimConfig{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10d %11.1f%% %11.1f%%\n", size>>20,
			100*pm.Meter.RequestHitRate(), 100*sm.Meter.RequestHitRate())
	}
}
