// Videostreaming reproduces the paper's headline comparison on the video
// traffic class: the five schemes of Fig. 7 across cache sizes, plus the
// latency distribution of Fig. 10 — the workload the paper's introduction
// motivates (Starlink users streaming video through in-space caches).
package main

import (
	"fmt"
	"log"

	"starcdn"
)

func main() {
	sys, err := starcdn.NewSystem(starcdn.SystemOptions{Buckets: 4})
	if err != nil {
		log.Fatal(err)
	}
	class := starcdn.VideoClass()
	class.NumObjects = 10_000
	class.MaxSizeBytes = 64 << 20
	tr, err := starcdn.GenerateWorkload(class, sys.Cities, 7, 120_000, 3*3600)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("hit rate vs cache size (video class, L=4)")
	fmt.Printf("%-10s %12s %12s %12s %12s\n", "cache", "lru", "starcdn", "fetch-only", "static")
	for _, size := range []int64{64 << 20, 128 << 20, 256 << 20, 512 << 20} {
		cfg := starcdn.CacheConfig{Kind: starcdn.LRU, Bytes: size}
		policies := []starcdn.Policy{
			sys.NaiveLRU(cfg),
			sys.StarCDN(cfg),
			sys.StarCDNVariant(cfg, starcdn.StarCDNOptions{Hashing: true}),
			sys.StaticCache(cfg),
		}
		fmt.Printf("%-10d", size>>20)
		for _, p := range policies {
			m, err := sys.Simulate(tr, p, starcdn.SimConfig{Seed: 1})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%11.1f%%", 100*m.Meter.RequestHitRate())
		}
		fmt.Println()
	}

	// Latency: StarCDN vs the bent-pipe status quo.
	cfg := starcdn.CacheConfig{Kind: starcdn.LRU, Bytes: 512 << 20}
	m, err := sys.Simulate(tr, sys.StarCDN(cfg), starcdn.SimConfig{Seed: 1, CollectLatency: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nStarCDN latency: p50=%.1fms p90=%.1fms p99=%.1fms\n",
		m.Latency.Quantile(0.5), m.Latency.Quantile(0.9), m.Latency.Quantile(0.99))
	fmt.Printf("served: local=%d bucket=%d relay-west=%d relay-east=%d ground=%d\n",
		m.BySource[starcdn.SourceLocal], m.BySource[starcdn.SourceBucket],
		m.BySource[starcdn.SourceRelayWest], m.BySource[starcdn.SourceRelayEast],
		m.BySource[starcdn.SourceGround])
}
